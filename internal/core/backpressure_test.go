package core

import (
	"strings"
	"testing"
	"time"

	"sweeper/internal/analysis"
	"sweeper/internal/exploit"
)

// budgetHog is a fast-tier analyzer that replays its whole window; registered
// with a tiny budget it must run out and say so, without touching the
// builtin analyzers or the antibody path.
type budgetHog struct{}

func (budgetHog) Name() string        { return "test.hog" }
func (budgetHog) Cost() analysis.Tier { return analysis.TierFast }
func (budgetHog) Run(ctx *analysis.Context, sb *analysis.Sandbox) (analysis.Finding, error) {
	sb.Run()
	return nil, nil
}

// TestPerAnalyzerBudgetStarvesOnlyTheBudgetedAnalyzer registers an expensive
// custom analyzer with a 50-instruction budget: its exhaustion must surface
// via AttackReport.ErrorFor while the builtin fast tier, the antibody and
// recovery proceed untouched.
func TestPerAnalyzerBudgetStarvesOnlyTheBudgetedAnalyzer(t *testing.T) {
	reg := DefaultRegistry()
	if err := reg.RegisterBudgeted(budgetHog{}, 50); err != nil {
		t.Fatal(err)
	}
	s, spec := newSweeperFor(t, "squid", func(c *Config) { c.Registry = reg })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "squid", 0, 6)
	s.Submit(payload, "worm", true)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	s.WaitAnalyses()
	r := s.Attacks()[0]
	if msg := r.ErrorFor("test.hog"); !strings.Contains(msg, "budget") {
		t.Errorf("budgeted analyzer error = %q, want a budget-exhaustion error", msg)
	}
	if msg := r.ErrorFor("membug"); msg != "" {
		t.Errorf("membug unexpectedly failed: %s", msg)
	}
	if len(r.MemBugFindings) == 0 {
		t.Error("builtin memory-bug analysis should be unaffected by the custom analyzer's budget")
	}
	if !r.Recovered {
		t.Error("recovery should succeed despite the starved analyzer")
	}
	if r.FinalAntibody == nil {
		t.Error("final antibody should still ship")
	}

	// Budgets are read from the registry live: lifting the cap after the
	// Sweeper was built must take effect on the next attack.
	if err := reg.SetBudget("test.hog", 0); err != nil {
		t.Fatal(err)
	}
	variant, err := exploit.ExploitVariant(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "squid", 100, 3)
	s.Submit(variant, "worm", true)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll(variant): %v", err)
	}
	s.WaitAnalyses()
	if msg := s.Attacks()[1].ErrorFor("test.hog"); msg != "" {
		t.Errorf("after lifting the budget, analyzer still failed: %q", msg)
	}
}

// blockingDeferred is a deferred-tier analyzer that parks until released, so
// a test can hold the deferred worker busy and fill the bounded queue.
type blockingDeferred struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockingDeferred) Name() string        { return "test.blockingdeferred" }
func (b *blockingDeferred) Cost() analysis.Tier { return analysis.TierDeferred }
func (b *blockingDeferred) Run(ctx *analysis.Context, sb *analysis.Sandbox) (analysis.Finding, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-b.release
	return nil, nil
}

// TestDeferredTierBackpressureBoundsTheQueue holds the single deferred
// worker busy with a queue depth of 1 and drives three attacks: the first
// occupies the worker, the second queues, and the third must be dropped —
// surfaced via ErrorFor and counted — while its report still seals and the
// guest keeps recovering and serving.
func TestDeferredTierBackpressureBoundsTheQueue(t *testing.T) {
	blocker := &blockingDeferred{started: make(chan struct{}, 8), release: make(chan struct{})}
	reg := analysis.NewRegistry()
	if err := reg.Register(blocker); err != nil {
		t.Fatal(err)
	}
	s, spec := newSweeperFor(t, "squid", func(c *Config) {
		c.Registry = reg
		c.Analyses = []string{"test.blockingdeferred"}
		c.DeferredQueueDepth = 1
	})

	attack := func(variant int) {
		t.Helper()
		payload, err := exploit.ExploitVariant(spec, variant)
		if err != nil {
			t.Fatal(err)
		}
		submitBenign(s, "squid", variant*100, 3)
		if !s.Submit(payload, "worm", true) {
			t.Fatalf("variant %d filtered before submission", variant)
		}
		if _, err := s.ServeAll(); err != nil {
			t.Fatalf("ServeAll(variant %d): %v", variant, err)
		}
	}

	attack(0)
	// Wait until the worker is actually inside attack 0's deferred run, so
	// the queue slot is demonstrably free for attack 1.
	select {
	case <-blocker.started:
	case <-time.After(10 * time.Second):
		t.Fatal("deferred worker never started attack 0's analysis")
	}
	attack(1) // queues behind the blocked worker
	attack(2) // queue full: must be dropped, not piled up

	if got := s.DeferredDropped(); got != 1 {
		t.Errorf("DeferredDropped = %d, want 1", got)
	}
	if got := s.DeferredBacklog(); got != 2 {
		t.Errorf("DeferredBacklog = %d, want 2 (one running, one queued)", got)
	}
	close(blocker.release)
	s.WaitAnalyses()

	reports := s.Attacks()
	if len(reports) != 3 {
		t.Fatalf("attacks handled = %d, want 3", len(reports))
	}
	for i, r := range reports[:2] {
		if msg := r.ErrorFor("test.blockingdeferred"); msg != "" {
			t.Errorf("attack %d deferred analysis unexpectedly failed: %s", i, msg)
		}
	}
	if msg := reports[2].ErrorFor("test.blockingdeferred"); !strings.Contains(msg, "dropped") {
		t.Errorf("attack 2 deferred error = %q, want a queue-full drop", msg)
	}
	for i, r := range reports {
		if !r.Recovered {
			t.Errorf("attack %d did not recover", i)
		}
	}
	if got := s.DeferredBacklog(); got != 0 {
		t.Errorf("DeferredBacklog after drain = %d, want 0", got)
	}
}
