package core

import (
	"errors"
	"os"
	"path/filepath"

	"sweeper/internal/antibody"
	"sweeper/internal/checkpoint"
	"sweeper/internal/metrics"
)

// FleetOptions configures a fleet's durability layer.
type FleetOptions struct {
	// DataDir is the root of the daemon's persistent state:
	//
	//	<DataDir>/antibodies/  — antibody WAL + snapshot (antibody.OpenDurable)
	//	<DataDir>/checkpoints/ — content-addressed checkpoint store
	//
	// Empty means fully in-memory, the NewFleet default.
	DataDir string
	// Shards is the antibody store shard count (default
	// antibody.DefaultShards).
	Shards int
	// CompactEvery is the WAL compaction threshold (default 256 appends).
	CompactEvery int
}

// DurabilityStats counts the fleet's durability events.
type DurabilityStats struct {
	// WarmRestarts counts guests restored from a persisted checkpoint.
	WarmRestarts int
	// ColdFallbacks counts guests that had a persisted checkpoint but could
	// not use it (unreadable store, corrupt record, layout mismatch) and
	// started cold instead. A fresh guest with nothing on disk is neither.
	ColdFallbacks int
	// Warnings counts non-fatal durability failures: an unopenable store at
	// construction, a failed checkpoint persist. The fleet keeps serving —
	// losing durability must never take down the defence.
	Warnings int
}

// NewFleetWithOptions returns a fleet whose antibody store and guest
// checkpoints persist under opts.DataDir. Opening is crash-tolerant (torn
// WAL tails are truncated, manifest chains fold to their last consistent
// record) and failure-tolerant: if either store cannot be opened the fleet
// degrades to the in-memory equivalent with a counted warning rather than
// failing — a daemon that lost its disk still defends its guests.
func NewFleetWithOptions(opts FleetOptions) *Fleet {
	f := &Fleet{
		rec:    metrics.NewFleetRecorder(),
		guests: make(map[string]*Guest),
	}
	if opts.DataDir == "" {
		f.store = antibody.NewStoreSharded(opts.Shards)
	} else {
		f.dataDir = opts.DataDir
		st, err := antibody.OpenDurable(filepath.Join(opts.DataDir, "antibodies"), antibody.DurableOptions{
			Shards:       opts.Shards,
			CompactEvery: opts.CompactEvery,
		})
		if err != nil {
			f.durability.Warnings++
			st = antibody.NewStoreSharded(opts.Shards)
		}
		f.store = st
		ds, err := checkpoint.OpenDiskStore(filepath.Join(opts.DataDir, "checkpoints"))
		if err != nil {
			f.durability.Warnings++
		} else {
			f.ckptStore = ds
		}
	}
	f.store.Subscribe(f.distribute)
	return f
}

// DataDir returns the fleet's persistent-state root ("" when in-memory).
func (f *Fleet) DataDir() string { return f.dataDir }

// Durability returns the fleet's durability counters.
func (f *Fleet) Durability() DurabilityStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.durability
}

func (f *Fleet) durabilityWarning() {
	f.mu.Lock()
	f.durability.Warnings++
	f.mu.Unlock()
}

// tryWarmRestore hands a newly added guest its persisted checkpoint, if one
// exists and is usable. Any failure — unreadable store, corrupt manifest,
// layout mismatch with the freshly constructed process — falls back to the
// cold image the Sweeper already built, with a counted warning; a guest with
// nothing on disk is simply fresh. Called from AddGuest, before the serving
// goroutine can exist, so the Sweeper is still single-owner.
func (f *Fleet) tryWarmRestore(g *Guest) {
	if f.ckptStore == nil {
		return
	}
	pc, err := f.ckptStore.Load(g.name)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			f.mu.Lock()
			f.durability.ColdFallbacks++
			f.durability.Warnings++
			f.mu.Unlock()
		}
		return
	}
	if pc.Layout != g.s.Layout() {
		// The persisted image was built for a different address-space layout
		// (e.g. a changed ASLR seed); its page table is meaningless here.
		f.mu.Lock()
		f.durability.ColdFallbacks++
		f.durability.Warnings++
		f.mu.Unlock()
		return
	}
	g.s.WarmRestore(pc)
	f.mu.Lock()
	f.durability.WarmRestarts++
	f.mu.Unlock()
	f.rec.Update(g.name, func(st *metrics.GuestStats) { st.WarmRestarted = true })
}

// WarmRestore reinstates the persisted checkpoint as the process's current
// state and re-seats the checkpoint ring on it: the cold-image checkpoint
// taken at construction must not remain a rollback target once the restored
// state supersedes it. The caller must own the Sweeper (no serving
// goroutine yet).
func (s *Sweeper) WarmRestore(pc *checkpoint.PersistedCheckpoint) {
	s.proc.RestorePersisted(pc.Mem, pc.Regs, pc.Alloc, pc.Rng)
	s.ckpt.Reset()
	s.ckpt.Checkpoint(s.proc)
}

// maybePersist writes the guest's newest checkpoint to the fleet's disk
// store when it advanced past the last persisted one. Runs on the serving
// goroutine (it owns the Sweeper and its checkpoint ring). Persist failures
// degrade to a counted warning.
func (g *Guest) maybePersist() {
	ds := g.fleet.ckptStore
	if ds == nil || g.s.Halted() {
		return
	}
	snap := g.s.Checkpoints().Latest()
	if snap == nil || snap.SeqNo == g.lastPersistSeq {
		return
	}
	if err := ds.Save(g.name, snap, g.s.Layout()); err != nil {
		g.fleet.durabilityWarning()
		return
	}
	g.lastPersistSeq = snap.SeqNo
}

// Sync flushes and fsyncs the durability layer: the antibody WAL and every
// checkpoint file written since the last sync. Stop calls it; exposed for
// callers that want durability at a quiescent point without stopping.
func (f *Fleet) Sync() error {
	var firstErr error
	if err := f.store.Sync(); err != nil {
		firstErr = err
	}
	if f.ckptStore != nil {
		if err := f.ckptStore.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Kill hard-stops the fleet with crash semantics — the in-process
// equivalent of SIGKILL, used by the fault-injection harness. Nothing is
// drained, flushed or fsynced: the durability layer is detached first (so
// no goroutine still winding down can write another WAL record), serving
// goroutines are terminated at their next loop boundary, and listeners are
// torn down. What the data directory holds afterwards is exactly what the
// write path had already made it hold — the state a real crash would leave.
func (f *Fleet) Kill() {
	f.store.DetachWAL()
	for _, g := range f.Guests() {
		g.mu.Lock()
		g.stopped = true
		g.cond.Broadcast()
		g.mu.Unlock()
	}
	f.wg.Wait()
	for _, g := range f.Guests() {
		if g.listener != nil {
			g.listener.Close()
		}
	}
}
