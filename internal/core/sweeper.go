// Package core implements the Sweeper system itself: it wires the runtime
// module (lightweight monitoring, checkpointing, the network proxy), the
// analysis module (memory-state analysis plus the pluggable
// analysis.Analyzer pipeline — memory-bug detection, taint analysis,
// backward slicing — applied during rollback-and-replay on pooled clone
// sandboxes) and the antibody module (VSEF and input-signature generation,
// deployment and distribution) around one protected guest process, and
// drives the detect → analyze → inoculate → recover cycle end to end.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sweeper/internal/analysis"
	"sweeper/internal/analysis/taint"
	"sweeper/internal/antibody"
	"sweeper/internal/checkpoint"
	"sweeper/internal/metrics"
	"sweeper/internal/monitor"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Config controls a Sweeper instance.
type Config struct {
	// CheckpointIntervalMs is the virtual time between lightweight
	// checkpoints (the paper's default is 200 ms).
	CheckpointIntervalMs uint64
	// MaxCheckpoints is the number of recent checkpoints retained (20).
	MaxCheckpoints int

	// ASLR enables address-space randomisation, the default lightweight
	// monitor. When disabled, the process is loaded at the well-known layout
	// an attacker assumes.
	ASLR bool
	// ASLRSeed fixes the randomised layout for reproducible experiments.
	ASLRSeed int64
	// ShadowStack additionally enables the shadow-stack lightweight monitor
	// (an ablation; the paper's default configuration relies on ASLR alone).
	ShadowStack bool

	// Registry holds the analyzers available to this instance. Nil means
	// DefaultRegistry() — memory-bug detection, taint analysis and backward
	// slicing. Custom analyzers are made available by registering them here.
	Registry *analysis.Registry
	// Analyses selects, by name, which registered analyzers run after an
	// attack is detected. Nil means every registered analyzer, subject to
	// the Enable* switches below; an empty non-nil slice disables the
	// heavyweight analyses entirely. When set, it is authoritative (the
	// Enable* switches are ignored).
	Analyses []string

	// EnableMemBug, EnableTaint and EnableSlicing gate the three builtin
	// analyzers when Analyses is nil. All default to true.
	EnableMemBug  bool
	EnableTaint   bool
	EnableSlicing bool

	// ParallelAnalysis runs the fast-tier analyzers concurrently, each
	// replaying the attack window on its own copy-on-write clone of the
	// rollback checkpoint, instead of one after another. The sequential path
	// is kept as a cross-check; both engines produce byte-identical
	// antibodies.
	ParallelAnalysis bool

	// PoolClones serves analysis, isolation and verification sandboxes from
	// a pool of reusable clone shells (reset to the requested checkpoint)
	// instead of building a fresh Machine and page-map copy per replay.
	// Defaults to true in DefaultConfig; pooled and fresh replays are
	// byte-for-byte identical, so this is purely a setup-cost knob.
	PoolClones bool

	// AlwaysOnTaint attaches full dynamic taint analysis during normal
	// execution (the TaintCheck/Vigilante-style baseline Sweeper argues
	// against); used only for overhead comparisons.
	AlwaysOnTaint bool

	// RegenerateOnVerify makes the verification sandbox re-run the fast
	// analysis tier against a reproduced exploit, regenerating the
	// memory-bug/taint evidence locally (VerifyDecision.Regenerated) instead
	// of trusting only "a violation reproduced". It costs one snapshot of the
	// sandbox per verification plus one fast-tier replay per reproduction;
	// disable it for adoption-rate-bound fleets that only need the
	// reproduction check. Default on (DefaultConfig).
	RegenerateOnVerify bool

	// VerifyAdoption makes the guest re-verify every antibody it did not
	// generate itself before adopting it: the antibody's attached exploit
	// input is replayed on a copy-on-write clone of the latest checkpoint and
	// the antibody is rejected unless the replay reproduces a detectable
	// violation. This is the paper's community-defence trust boundary —
	// antibodies from federated peers are untrusted by default — so sweeperd
	// enables it whenever it peers with other daemons. Off by default: guests
	// inside one daemon share a trust domain.
	VerifyAdoption bool

	// PipelinedRecovery overlaps recovery with analysis: the benign history
	// prefix (everything before the suspect request) starts replaying on a
	// copy-on-write recovery clone at the moment of detection, concurrently
	// with the fast analysis tier, and when the analyses confirm the suspect
	// as the culprit the live process adopts the clone's finished state
	// instead of re-executing the prefix serially after them. The
	// client-visible recovery gap then costs the rollback constant plus the
	// (usually empty) post-suspect tail. Recovery automatically falls back to
	// the serial replay when the culprit turns out not to be the suspect
	// request, when the prefix replay did not end cleanly, or when the live
	// machine carries tools or probes whose shadow state only a serial replay
	// can rebuild (always-on monitors, previously adopted antibodies).
	// Default true (DefaultConfig).
	PipelinedRecovery bool

	// ReplayBudget bounds each analysis replay, in instructions. A registry
	// entry registered with its own budget (analysis.Registry.
	// RegisterBudgeted) overrides it for that analyzer only.
	ReplayBudget uint64
	// ServeBudget bounds each slice of normal execution, in instructions.
	ServeBudget uint64

	// DeferredQueueDepth bounds the per-Sweeper queue of deferred-tier
	// pipeline runs. Deferred analyses of distinct attacks complete on one
	// worker goroutine drawing from this queue, so an attack storm cannot
	// pile up unbounded deferred work; when the queue is full the deferred
	// analyses of the newest attack are dropped (surfaced per analyzer via
	// AttackReport.ErrorFor, counted in Sweeper.DeferredDropped) and the
	// report seals without them. Zero means the default of 16.
	DeferredQueueDepth int

	// ProduceAntibodies gates antibody publication. When false the Sweeper
	// still detects attacks, recovers in place and keeps its full report, but
	// publishes nothing — no store entries, no OnAntibody callbacks. This is
	// the consumer role of the paper's producer/consumer deployment split
	// (Section 6): consumer hosts rely on antibodies federated from the
	// producer fraction α of the community instead of generating their own.
	// Default true (DefaultConfig).
	ProduceAntibodies bool

	// RandSeed seeds the guest-visible RNG.
	RandSeed uint32

	// InstanceID distinguishes this Sweeper instance when several protect
	// guests of the same program (a fleet): it prefixes generated antibody
	// IDs so antibodies from different guests never collide in a shared
	// store. Empty means the program name is used.
	InstanceID string
}

// DefaultConfig returns the configuration used in the paper's experiments:
// 200 ms checkpoints, 20 retained, ASLR on, all analyses enabled, pooled
// clone sandboxes.
func DefaultConfig() Config {
	return Config{
		CheckpointIntervalMs: 200,
		MaxCheckpoints:       20,
		ASLR:                 true,
		ASLRSeed:             0x5eed,
		EnableMemBug:         true,
		EnableTaint:          true,
		EnableSlicing:        true,
		ParallelAnalysis:     true,
		PoolClones:           true,
		RegenerateOnVerify:   true,
		PipelinedRecovery:    true,
		ProduceAntibodies:    true,
		ReplayBudget:         200_000_000,
		ServeBudget:          0,
		DeferredQueueDepth:   16,
	}
}

// Sweeper protects one guest server process.
type Sweeper struct {
	cfg      Config
	name     string
	prog     *vm.Program
	procOpts proc.Options

	layout vm.Layout
	proxy  *netproxy.Proxy
	proc   *proc.Process
	ckpt   *checkpoint.Manager

	analyzers []analysis.Analyzer
	// registry is where the analyzers were resolved from; per-analyzer
	// replay budgets are read from it live, so a SetBudget call after
	// construction applies to the next attack.
	registry *analysis.Registry
	pool     *proc.ClonePool
	latency  *metrics.AnalysisRecorder

	// The deferred analysis tier of every attack runs on one worker
	// goroutine fed by a bounded queue (cfg.DeferredQueueDepth). The worker
	// is started on demand and exits once the queue drains, so an idle
	// Sweeper holds no goroutine.
	deferredMu      sync.Mutex
	deferredCh      chan func()
	deferredWorking bool
	deferredDepth   atomic.Int32
	deferredDropped atomic.Int64
	// unpooledSandboxes counts sandboxes built with PoolClones off, so
	// ClonePoolStats stays truthful in pooled-vs-fresh comparisons. Atomic:
	// isolation workers build sandboxes concurrently.
	unpooledSandboxes atomic.Int64

	antibodies []*antibody.Antibody
	applied    []*antibody.AppliedAntibody

	// attacksMu guards attacks: reports are appended on the serving
	// goroutine, while WaitAnalyses (e.g. a draining fleet) reads the list
	// from other goroutines.
	attacksMu sync.Mutex
	attacks   []*AttackReport

	completions *metrics.CompletionRecorder

	// OnAntibody, when set, is called every time an antibody (initial,
	// refined or final) becomes available; community-defence experiments use
	// it to model distribution to other hosts.
	OnAntibody func(*antibody.Antibody)

	// OnAttack, when set, is called on the serving goroutine as soon as an
	// attack report is recorded (its deferred tier may still be running).
	// The TCP front end uses it to answer the excised culprit request's
	// connection with StatusAbsorbed without waiting for the queue to drain.
	OnAttack func(*AttackReport)

	attackSeq int
	halted    bool
}

// New creates a Sweeper instance protecting the given program.
func New(name string, prog *vm.Program, procOpts proc.Options, cfg Config) (*Sweeper, error) {
	if cfg.CheckpointIntervalMs == 0 {
		cfg.CheckpointIntervalMs = 200
	}
	if cfg.MaxCheckpoints == 0 {
		cfg.MaxCheckpoints = 20
	}
	if cfg.ReplayBudget == 0 {
		cfg.ReplayBudget = 200_000_000
	}
	if cfg.DeferredQueueDepth <= 0 {
		cfg.DeferredQueueDepth = 16
	}
	analyzers, registry, err := buildAnalyzers(cfg)
	if err != nil {
		return nil, err
	}
	layout := vm.DefaultLayout()
	if cfg.ASLR {
		layout = monitor.RandomizedLayout(monitor.RandomizeOptions{Seed: cfg.ASLRSeed})
	}
	if procOpts.RandSeed == 0 {
		procOpts.RandSeed = cfg.RandSeed
	}
	proxy := netproxy.New()
	p, err := proc.New(name, prog, layout, proxy, procOpts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := &Sweeper{
		cfg:         cfg,
		name:        name,
		prog:        prog,
		procOpts:    procOpts,
		layout:      layout,
		proxy:       proxy,
		proc:        p,
		ckpt:        checkpoint.NewManager(checkpoint.Policy{IntervalMs: cfg.CheckpointIntervalMs, MaxKept: cfg.MaxCheckpoints}),
		analyzers:   analyzers,
		registry:    registry,
		pool:        proc.NewClonePool(p),
		latency:     metrics.NewAnalysisRecorder(),
		completions: metrics.NewCompletionRecorder(),
	}
	p.OnRequestBoundary = s.onRequestBoundary
	if cfg.ShadowStack {
		p.Machine.AttachTool(monitor.NewShadowStack())
	}
	if cfg.AlwaysOnTaint {
		p.Machine.AttachTool(taint.New(true))
	}
	// Always start from a known-good checkpoint so analysis and recovery have
	// somewhere to roll back to even if the very first request is the attack.
	s.ckpt.Checkpoint(p)
	return s, nil
}

// Name returns the protected program's name.
func (s *Sweeper) Name() string { return s.name }

// Config returns the active configuration.
func (s *Sweeper) Config() Config { return s.cfg }

// Layout returns the (possibly randomised) layout the process runs at.
func (s *Sweeper) Layout() vm.Layout { return s.layout }

// Proxy returns the protecting network proxy; workload generators submit
// requests through it.
func (s *Sweeper) Proxy() *netproxy.Proxy { return s.proxy }

// Process returns the protected process.
func (s *Sweeper) Process() *proc.Process { return s.proc }

// Checkpoints returns the checkpoint manager.
func (s *Sweeper) Checkpoints() *checkpoint.Manager { return s.ckpt }

// Antibodies returns every antibody generated so far, in generation order.
func (s *Sweeper) Antibodies() []*antibody.Antibody { return s.antibodies }

// Attacks returns the report for every attack handled so far. A report's
// deferred fields (the slicing cross-check) may still be completing; call
// AttackReport.Wait — or Sweeper.WaitAnalyses — before reading them.
func (s *Sweeper) Attacks() []*AttackReport {
	s.attacksMu.Lock()
	defer s.attacksMu.Unlock()
	return append([]*AttackReport(nil), s.attacks...)
}

// WaitAnalyses blocks until every attack report so far is sealed, i.e. the
// deferred analysis tier of every handled attack has completed.
func (s *Sweeper) WaitAnalyses() {
	for _, r := range s.Attacks() {
		r.Wait()
	}
}

// AnalyzerLatencies returns the per-analyzer replay latencies observed so far.
func (s *Sweeper) AnalyzerLatencies() []metrics.AnalyzerLatency {
	return s.latency.Snapshot()
}

// ClonePoolStats reports how many analysis sandboxes were freshly built
// (pooled misses plus, with PoolClones off, every fresh clone) and how many
// were served by resetting a pooled shell.
func (s *Sweeper) ClonePoolStats() (created, reused int) {
	created, reused = s.pool.Stats()
	created += int(s.unpooledSandboxes.Load())
	return created, reused
}

// Completions returns the request-completion recorder (throughput series).
func (s *Sweeper) Completions() *metrics.CompletionRecorder { return s.completions }

// Halted reports whether the protected server exited (e.g. a successful
// hijack called exit, or the guest program terminated).
func (s *Sweeper) Halted() bool { return s.halted }

// budgetFor resolves the replay budget for the named analyzer: its current
// registry override when one is set, the instance-wide budget otherwise.
func (s *Sweeper) budgetFor(analyzer string) uint64 {
	if b := s.registry.Budget(analyzer); b > 0 {
		return b
	}
	return s.cfg.ReplayBudget
}

// sandbox builds a replay sandbox positioned at the given snapshot — from
// the clone pool when cfg.PoolClones is set, as a fresh Process.Clone
// otherwise — bounded by the given replay budget (0 means the instance-wide
// budget). Releasing the sandbox returns pooled shells for reuse.
func (s *Sweeper) sandbox(snap *proc.Snapshot, budget uint64) (*analysis.Sandbox, error) {
	if budget == 0 {
		budget = s.cfg.ReplayBudget
	}
	if s.cfg.PoolClones {
		clone, err := s.pool.Get(snap)
		if err != nil {
			return nil, err
		}
		return analysis.NewSandbox(clone, budget, func() { s.pool.Put(clone) }), nil
	}
	clone, err := s.proc.Clone(snap)
	if err != nil {
		return nil, err
	}
	s.unpooledSandboxes.Add(1)
	return analysis.NewSandbox(clone, budget, nil), nil
}

// enqueueDeferred hands one attack's deferred-tier work to the per-Sweeper
// deferred worker, starting one if none is running. It reports false —
// without running the job — when the bounded queue is full (the attack-storm
// backpressure case).
func (s *Sweeper) enqueueDeferred(job func()) bool {
	s.deferredMu.Lock()
	if s.deferredCh == nil {
		s.deferredCh = make(chan func(), s.cfg.DeferredQueueDepth)
	}
	// Raise the gauge before the job becomes visible so a worker finishing
	// it can never drive the backlog reading negative.
	s.deferredDepth.Add(1)
	select {
	case s.deferredCh <- job:
		if !s.deferredWorking {
			s.deferredWorking = true
			go s.deferredWorker()
		}
		s.deferredMu.Unlock()
		return true
	default:
		s.deferredDepth.Add(-1)
		s.deferredMu.Unlock()
		s.deferredDropped.Add(1)
		return false
	}
}

// deferredWorker drains the deferred queue and exits when it is empty; the
// exit decision is re-checked under deferredMu so a racing enqueue either
// sees a working worker or finds the queue already drained.
func (s *Sweeper) deferredWorker() {
	for {
		select {
		case j := <-s.deferredCh:
			j()
			s.deferredDepth.Add(-1)
		default:
			s.deferredMu.Lock()
			select {
			case j := <-s.deferredCh:
				s.deferredMu.Unlock()
				j()
				s.deferredDepth.Add(-1)
			default:
				s.deferredWorking = false
				s.deferredMu.Unlock()
				return
			}
		}
	}
}

// DeferredBacklog returns how many attacks' deferred analysis runs are
// queued or in flight on the deferred worker.
func (s *Sweeper) DeferredBacklog() int { return int(s.deferredDepth.Load()) }

// DeferredDropped returns how many attacks had their deferred analyses
// dropped because the bounded deferred queue was full.
func (s *Sweeper) DeferredDropped() int { return int(s.deferredDropped.Load()) }

// Submit offers a request payload to the protected server through the proxy.
// It reports whether the request was accepted (false when an input-signature
// antibody filtered it out).
func (s *Sweeper) Submit(payload []byte, src string, malicious bool) bool {
	_, accepted := s.proxy.Submit(payload, src, malicious)
	return accepted
}

// SubmitTracked is Submit returning the proxy-assigned request ID as well,
// so a caller that must route a response back to this exact request — the
// TCP front end — can key its bookkeeping on it. The ID is valid even when
// the request was filtered.
func (s *Sweeper) SubmitTracked(payload []byte, src string, malicious bool) (reqID int, accepted bool) {
	req, accepted := s.proxy.Submit(payload, src, malicious)
	return req.ID, accepted
}

func (s *Sweeper) onRequestBoundary() {
	s.completions.Record(s.proc.Machine.NowMillis())
	s.ckpt.MaybeCheckpoint(s.proc)
}

// ServeResult summarises one ServeAll invocation.
type ServeResult struct {
	RequestsServed int
	AttacksHandled int
	Halted         bool
}

// ServeAll runs the protected server until the proxy queue is drained,
// handling any attacks detected along the way (analysis, antibody
// generation, recovery) and then continuing service. It returns as soon as
// service has resumed; deferred analyses of handled attacks may still be
// completing (see WaitAnalyses).
func (s *Sweeper) ServeAll() (ServeResult, error) {
	var res ServeResult
	if s.halted {
		return res, fmt.Errorf("core: protected process has exited")
	}
	startServed := s.proc.ServedRequests()
	for {
		stop := s.proc.Run(s.cfg.ServeBudget)
		switch stop.Reason {
		case vm.StopWaitInput:
			if s.proxy.Pending() == 0 {
				res.RequestsServed = s.proc.ServedRequests() - startServed
				return res, nil
			}
			// More requests arrived while we were handling the previous stop;
			// keep serving.
			continue
		case vm.StopInstrBudget:
			continue
		case vm.StopHalt:
			s.halted = true
			res.Halted = true
			res.RequestsServed = s.proc.ServedRequests() - startServed
			return res, nil
		case vm.StopFault, vm.StopViolation:
			det := monitor.Classify(stop)
			if !det.Suspicious {
				continue
			}
			report := s.HandleAttack(stop, det)
			s.attacksMu.Lock()
			s.attacks = append(s.attacks, report)
			s.attacksMu.Unlock()
			if s.OnAttack != nil {
				s.OnAttack(report)
			}
			res.AttacksHandled++
			if !report.Recovered {
				s.halted = true
				res.Halted = true
				res.RequestsServed = s.proc.ServedRequests() - startServed
				return res, fmt.Errorf("core: recovery failed after attack: %s", report.Detection.Reason)
			}
			continue
		default:
			return res, fmt.Errorf("core: unexpected stop reason %v", stop.Reason)
		}
	}
}
