package core

import (
	"testing"

	"sweeper/internal/analysis/membug"
	"sweeper/internal/analysis/taint"
	"sweeper/internal/antibody"
	"sweeper/internal/apps"
	"sweeper/internal/exploit"
)

// genuineFinalAntibody runs the full defence for an app on a standalone
// Sweeper and returns the final antibody (VSEFs + input signature + exploit
// input) it generated — the genuine article that verification tests mutate.
func genuineFinalAntibody(t *testing.T, appName string) *antibody.Antibody {
	t.Helper()
	s, spec := newSweeperFor(t, appName, func(c *Config) { c.InstanceID = "producer" })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, appName, 0, 4)
	s.Submit(payload, "worm", true)
	if _, err := s.ServeAll(); err != nil {
		t.Fatal(err)
	}
	if len(s.Attacks()) != 1 || s.Attacks()[0].FinalAntibody == nil {
		t.Fatalf("producer did not generate a final antibody")
	}
	final := s.Attacks()[0].FinalAntibody
	if len(final.ExploitInput) == 0 || len(final.Sigs) == 0 {
		t.Fatalf("final antibody lacks exploit input or signatures: %s", final)
	}
	return final
}

// newVerifyingConsumer builds a one-guest fleet whose guest re-verifies every
// received antibody before adoption, running under a layout different from
// the producer's (distinct ASLR seed), like a distinct federated host.
func newVerifyingConsumer(t *testing.T, appName, guestName string, seed int64) *Fleet {
	t.Helper()
	spec, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	cfg := DefaultConfig()
	cfg.ASLRSeed = seed
	cfg.VerifyAdoption = true
	if _, err := f.AddGuest(guestName, spec.Name, spec.Image, spec.Options, cfg); err != nil {
		t.Fatal(err)
	}
	f.Start()
	f.Submit(guestName, exploit.Benign(appName, 0), "client", false)
	f.Drain()
	return f
}

// TestVerifyBeforeAdoptAcceptsGenuineAntibody is the positive path: a guest
// that was never attacked replays the peer-generated exploit in a sandbox,
// sees the violation reproduce, and only then adopts — ending up inoculated.
func TestVerifyBeforeAdoptAcceptsGenuineAntibody(t *testing.T) {
	final := genuineFinalAntibody(t, "squid")
	f := newVerifyingConsumer(t, "squid", "squid-consumer", 314159)

	// An untrusted publisher (e.g. the federation layer) drops the genuine
	// antibody straight into the store.
	if !f.Store().Publish(final) {
		t.Fatal("store rejected the genuine antibody")
	}
	f.Drain()

	st, _ := f.Metrics().Guest("squid-consumer")
	if st.AntibodiesVerified != 1 {
		t.Errorf("AntibodiesVerified = %d, want 1", st.AntibodiesVerified)
	}
	if st.AntibodiesRejected != 0 {
		t.Errorf("AntibodiesRejected = %d, want 0", st.AntibodiesRejected)
	}
	if st.AntibodiesAdopted != 1 {
		t.Errorf("AntibodiesAdopted = %d, want 1", st.AntibodiesAdopted)
	}
	// The adopted signature must now filter the exploit at the proxy.
	if f.Submit("squid-consumer", final.ExploitInput, "worm", true) {
		t.Error("guest accepted the exploit after verified adoption")
	}
	f.Stop()
}

// TestVerifyBeforeAdoptNegativePaths feeds a verifying guest antibodies an
// untrusted peer could fabricate — corrupted exploit input, an exploit for a
// different program, a benign payload masquerading as an exploit, and bare
// signatures with no exploit at all — and requires every one to be rejected,
// counted, and to leave no filter behind that could censor benign traffic.
func TestVerifyBeforeAdoptNegativePaths(t *testing.T) {
	squidFinal := genuineFinalAntibody(t, "squid")
	cvsFinal := genuineFinalAntibody(t, "cvs")
	f := newVerifyingConsumer(t, "squid", "squid-consumer", 271828)

	benign := exploit.Benign("squid", 7)
	truncated := append([]byte(nil), squidFinal.ExploitInput[:10]...)

	cases := []struct {
		name string
		ab   *antibody.Antibody
	}{
		{
			// Exploit input corrupted in transit: the signature no longer
			// matches the exploit it claims to justify.
			name: "corrupted exploit, stale signature",
			ab: &antibody.Antibody{
				ID:           "rogue-corrupt-final",
				Program:      "squid",
				Stage:        antibody.StageFinal,
				Sigs:         squidFinal.Sigs,
				ExploitInput: truncated,
			},
		},
		{
			// Corruption with a consistent signature: the replay itself must
			// catch that the input no longer exploits anything.
			name: "corrupted exploit, matching signature",
			ab: &antibody.Antibody{
				ID:           "rogue-corrupt-consistent",
				Program:      "squid",
				Stage:        antibody.StageFinal,
				Sigs:         []*antibody.Signature{antibody.ExactSignature("rogue-corrupt-consistent-sig", truncated)},
				ExploitInput: truncated,
			},
		},
		{
			// A real exploit — for the wrong program. It reproduces nothing
			// on a squid guest, so the signature is unjustified here.
			name: "wrong-program exploit",
			ab: &antibody.Antibody{
				ID:           "rogue-wrong-program",
				Program:      "squid",
				Stage:        antibody.StageFinal,
				Sigs:         []*antibody.Signature{antibody.ExactSignature("rogue-wrong-program-sig", cvsFinal.ExploitInput)},
				ExploitInput: cvsFinal.ExploitInput,
			},
		},
		{
			// Censorship attempt: a benign request dressed up as an exploit,
			// whose signature would filter legitimate traffic if adopted.
			name: "benign input masquerading as exploit",
			ab: &antibody.Antibody{
				ID:           "rogue-benign-masquerade",
				Program:      "squid",
				Stage:        antibody.StageFinal,
				Sigs:         []*antibody.Signature{antibody.ExactSignature("rogue-benign-sig", benign)},
				ExploitInput: benign,
			},
		},
		{
			// Signatures with no exploit attached are unverifiable and must
			// not be trusted.
			name: "signatures without exploit input",
			ab: &antibody.Antibody{
				ID:      "rogue-bare-sigs",
				Program: "squid",
				Stage:   antibody.StageFinal,
				Sigs:    []*antibody.Signature{antibody.ExactSignature("rogue-bare-sig", benign)},
			},
		},
	}

	rejected := 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !f.Store().Publish(tc.ab) {
				t.Fatal("store rejected the crafted antibody outright")
			}
			f.Drain()
			rejected++
			st, _ := f.Metrics().Guest("squid-consumer")
			if st.AntibodiesRejected != rejected {
				t.Errorf("AntibodiesRejected = %d, want %d", st.AntibodiesRejected, rejected)
			}
			if st.AntibodiesAdopted != 0 {
				t.Errorf("AntibodiesAdopted = %d, want 0", st.AntibodiesAdopted)
			}
			// No crafted signature may have been installed: benign traffic
			// must still flow.
			if !f.Submit("squid-consumer", benign, "client", false) {
				t.Error("benign request filtered — a rejected antibody left a filter behind")
			}
			f.Drain()
		})
	}

	st, _ := f.Metrics().Guest("squid-consumer")
	if st.AntibodiesVerified != 0 {
		t.Errorf("AntibodiesVerified = %d, want 0 (no crafted antibody verifies)", st.AntibodiesVerified)
	}
	f.Stop()
}

// TestVerifyRegeneratesFastTierFindings: the adoption sandbox does not just
// reproduce "a violation" — it re-runs the fast analysis tier against the
// reproduction, regenerating the memory-bug and taint evidence locally (the
// paper's strongest trust model: a receiving host could rebuild the antibody
// itself instead of installing the sender's).
func TestVerifyRegeneratesFastTierFindings(t *testing.T) {
	final := genuineFinalAntibody(t, "squid")

	// A distinct host: different ASLR layout, never attacked.
	s, _ := newSweeperFor(t, "squid", func(c *Config) { c.ASLRSeed = 987654 })
	submitBenign(s, "squid", 0, 3)
	if _, err := s.ServeAll(); err != nil {
		t.Fatal(err)
	}

	dec := s.VerifyAntibody(final)
	if !dec.Adoptable || !dec.Reproduced {
		t.Fatalf("genuine antibody not adoptable: %s", dec.Reason)
	}
	mb, ok := dec.Regenerated[membug.AnalyzerName].(*membug.Result)
	if !ok || len(mb.Findings) == 0 {
		t.Fatalf("memory-bug evidence not regenerated: %v", dec.Regenerated)
	}
	if mb.Findings[0].Kind != membug.KindHeapOverflow {
		t.Errorf("regenerated membug kind = %v, want heap overflow", mb.Findings[0].Kind)
	}
	tt, ok := dec.Regenerated[taint.AnalyzerName].(*taint.Result)
	if !ok || !tt.Detected {
		t.Fatalf("taint evidence not regenerated: %v", dec.Regenerated)
	}

	// A rejected antibody regenerates nothing: no reproduction, no evidence.
	benign := exploit.Benign("squid", 3)
	rogue := &antibody.Antibody{
		ID:           "rogue-no-regen",
		Program:      "squid",
		Stage:        antibody.StageFinal,
		Sigs:         []*antibody.Signature{antibody.ExactSignature("rogue-no-regen-sig", benign)},
		ExploitInput: benign,
	}
	if dec := s.VerifyAntibody(rogue); dec.Adoptable || len(dec.Regenerated) != 0 {
		t.Errorf("rejected antibody yielded regenerated findings: %+v", dec)
	}
}

// TestAdoptInstallsRegeneratedAntibody: a verifying consumer whose sandbox
// regenerated the fast-tier evidence does not install the sender's antibody
// at all — it synthesises its own (locally derived VSEFs plus an exact
// signature over the just-replayed exploit input) and installs that,
// removing the last trust in received antibody contents. The regenerated
// antibody must protect exactly like the original.
func TestAdoptInstallsRegeneratedAntibody(t *testing.T) {
	final := genuineFinalAntibody(t, "squid")
	f := newVerifyingConsumer(t, "squid", "squid-consumer", 161803)
	if !f.Store().Publish(final) {
		t.Fatal("store rejected the genuine antibody")
	}
	f.Drain()

	st, _ := f.Metrics().Guest("squid-consumer")
	if st.AntibodiesAdopted != 1 {
		t.Fatalf("AntibodiesAdopted = %d, want 1", st.AntibodiesAdopted)
	}
	if st.AntibodiesRegenerated != 1 {
		t.Errorf("AntibodiesRegenerated = %d, want 1 (DefaultConfig regenerates on verify)", st.AntibodiesRegenerated)
	}
	if st.FindingsRegenerated == 0 {
		t.Error("no findings regenerated; the local antibody had nothing to build from")
	}
	// The locally synthesised signature must filter the exploit like the
	// sender's would have.
	if f.Submit("squid-consumer", final.ExploitInput, "worm", true) {
		t.Error("guest accepted the exploit after regenerated adoption")
	}
	// Benign traffic still flows.
	if !f.Submit("squid-consumer", exploit.Benign("squid", 9), "client", false) {
		t.Error("regenerated antibody censored benign traffic")
	}
	f.Stop()

	// RegenerateAntibody itself: the ID keeps the sender's antibody family,
	// so stage replacement still works across regenerated/original stages.
	if got, want := antibodyFamily(final.ID+"+regen"), antibodyFamily(final.ID); got != want {
		t.Errorf("regenerated family %q != original family %q", got, want)
	}

	// With regeneration disabled, the consumer verifies and falls back to
	// installing the sender's antibody, and counts no regeneration.
	spec, err := apps.ByName("squid")
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewFleet()
	cfg := DefaultConfig()
	cfg.ASLRSeed = 141421
	cfg.VerifyAdoption = true
	cfg.RegenerateOnVerify = false
	if _, err := f2.AddGuest("plain-consumer", spec.Name, spec.Image, spec.Options, cfg); err != nil {
		t.Fatal(err)
	}
	f2.Start()
	f2.Submit("plain-consumer", exploit.Benign("squid", 0), "client", false)
	f2.Drain()
	if !f2.Store().Publish(final) {
		t.Fatal("store rejected the genuine antibody")
	}
	f2.Drain()
	st2, _ := f2.Metrics().Guest("plain-consumer")
	if st2.AntibodiesAdopted != 1 || st2.AntibodiesRegenerated != 0 {
		t.Errorf("adopted=%d regenerated=%d, want 1/0 with regeneration disabled",
			st2.AntibodiesAdopted, st2.AntibodiesRegenerated)
	}
	if f2.Submit("plain-consumer", final.ExploitInput, "worm", true) {
		t.Error("fallback consumer accepted the exploit after adoption")
	}
	f2.Stop()
}

// TestVerifyReproducesViaConfiguredMonitors: an exploit that the live guest
// detects through an attached monitor (shadow stack; no ASLR, so no fault)
// must also reproduce in the verification sandbox — the clone carries no
// tools by default, so ReplayExploit re-attaches the configured monitors. A
// bare clone would let the hijack run cleanly and reject the genuine
// antibody forever.
func TestVerifyReproducesViaConfiguredMonitors(t *testing.T) {
	shadowCfg := func(c *Config) {
		c.ASLR = false
		c.ShadowStack = true
	}
	s, spec := newSweeperFor(t, "apache1", func(c *Config) {
		shadowCfg(c)
		c.InstanceID = "producer"
	})
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "apache1", 0, 2)
	s.Submit(payload, "worm", true)
	if _, err := s.ServeAll(); err != nil {
		t.Fatal(err)
	}
	if len(s.Attacks()) != 1 || s.Attacks()[0].FinalAntibody == nil {
		t.Fatal("producer did not generate a final antibody")
	}
	final := s.Attacks()[0].FinalAntibody
	if len(final.ExploitInput) == 0 {
		t.Fatal("final antibody carries no exploit input")
	}

	f := NewFleet()
	cfg := DefaultConfig()
	shadowCfg(&cfg)
	cfg.VerifyAdoption = true
	if _, err := f.AddGuest("apache1-consumer", spec.Name, spec.Image, spec.Options, cfg); err != nil {
		t.Fatal(err)
	}
	f.Start()
	f.Submit("apache1-consumer", exploit.Benign("apache1", 0), "client", false)
	f.Drain()
	if !f.Store().Publish(final) {
		t.Fatal("store rejected the genuine antibody")
	}
	f.Drain()
	st, _ := f.Metrics().Guest("apache1-consumer")
	if st.AntibodiesVerified != 1 {
		t.Errorf("AntibodiesVerified = %d, want 1 (monitor-detected exploit must reproduce in the sandbox)", st.AntibodiesVerified)
	}
	if st.AntibodiesRejected != 0 {
		t.Errorf("AntibodiesRejected = %d, want 0", st.AntibodiesRejected)
	}
	if f.Submit("apache1-consumer", final.ExploitInput, "worm", true) {
		t.Error("consumer accepted the exploit after verified adoption")
	}
	f.Stop()
}

// TestMaliciousVSEFOnlyAntibodyCannotTakeDownGuest closes the remaining DoS
// window: a VSEF-only antibody carries nothing verifiable, so it is adopted
// on the paper's "VSEFs cannot be harmful" premise — but a malicious probe
// CAN be harmful by raising false violations on benign traffic. The defence
// is in recovery: the replayed history is known benign, so a probe firing
// during recovery replay is faulty by definition and gets uninstalled
// instead of halting the guest. Here a rogue peer plants a double-free guard
// on the Ret of libc's free wrapper, where R1 still holds the just-freed
// pointer — it would fire on every request that frees memory.
func TestMaliciousVSEFOnlyAntibodyCannotTakeDownGuest(t *testing.T) {
	spec, err := apps.ByName("squid")
	if err != nil {
		t.Fatal(err)
	}
	freeEntry, ok := spec.Image.Symbols["free"]
	if !ok {
		t.Fatal("squid image has no free symbol")
	}
	f := newVerifyingConsumer(t, "squid", "squid-victim", 112233)
	rogue := &antibody.Antibody{
		ID:      "rogue-dos-initial",
		Program: "squid",
		Stage:   antibody.StageInitial,
		VSEFs: []*antibody.VSEF{{
			Kind:      antibody.VSEFDoubleFree,
			Program:   "squid",
			Name:      "rogue-dos-vsef",
			InstrIdx:  freeEntry + 2, // free's Ret: R1 still holds the freed pointer
			InstrSym:  "free",
			CallerIdx: -1,
		}},
	}
	if !f.Store().Publish(rogue) {
		t.Fatal("store rejected the rogue antibody outright")
	}
	f.Drain()

	// Benign traffic must keep flowing: the misfire is treated as an attack,
	// analysis finds nothing real, and recovery uninstalls the bad probe.
	for i := 0; i < 6; i++ {
		if !f.Submit("squid-victim", exploit.Benign("squid", 10+i), "client", false) {
			t.Fatalf("benign request %d filtered", i)
		}
	}
	f.Drain()

	g, _ := f.Guest("squid-victim")
	if err := g.ServeError(); err != nil {
		t.Fatalf("guest halted on the rogue VSEF: %v", err)
	}
	if g.Sweeper().Halted() {
		t.Fatal("guest halted on the rogue VSEF")
	}
	removed := false
	for _, r := range g.Sweeper().Attacks() {
		if !r.Recovered {
			t.Errorf("recovery failed for false-positive attack %d", r.Seq)
		}
		for _, name := range r.BadProbesRemoved {
			if name == "rogue-dos-vsef" {
				removed = true
			}
		}
	}
	if !removed {
		t.Error("rogue probe never fired or was not removed; DoS scenario not exercised")
	}
	st, _ := f.Metrics().Guest("squid-victim")
	if st.RequestsServed < 7 {
		t.Errorf("guest served %d requests, want all of them despite the rogue probe", st.RequestsServed)
	}
	f.Stop()
}
