package core

import (
	"bytes"
	"fmt"
	"testing"

	"sweeper/internal/analysis"
	"sweeper/internal/antibody"
	"sweeper/internal/apps"
	"sweeper/internal/exploit"
)

// runFullCycle drives the complete detect → analyze → inoculate → recover
// cycle for one app under the given engine and returns the Sweeper.
func runFullCycle(t *testing.T, appName string, parallel bool) *Sweeper {
	t.Helper()
	s, spec := newSweeperFor(t, appName, func(c *Config) { c.ParallelAnalysis = parallel })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	const before, after = 8, 8
	submitBenign(s, appName, 0, before)
	if !s.Submit(payload, "worm", true) {
		t.Fatal("exploit was filtered before any antibody existed")
	}
	submitBenign(s, appName, before, after)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	if len(s.Attacks()) != 1 {
		t.Fatalf("attacks = %d, want 1", len(s.Attacks()))
	}
	// The deferred tier (slicing cross-check) completes after ServeAll has
	// returned; the assertions below read its fields.
	s.WaitAnalyses()
	return s
}

func marshalAll(t *testing.T, abs []*antibody.Antibody) []string {
	t.Helper()
	out := make([]string, len(abs))
	for i, a := range abs {
		data, err := a.Marshal()
		if err != nil {
			t.Fatalf("marshalling antibody %s: %v", a.ID, err)
		}
		out[i] = string(data)
	}
	return out
}

// TestParallelAndSequentialEnginesProduceIdenticalAntibodies is the
// cross-check the sequential engine is kept for: both engines replay the
// same attack window from the same checkpoint, so every antibody (initial,
// refined, final — VSEFs, signatures, exploit input and all) must be
// byte-identical, for every evaluation application.
func TestParallelAndSequentialEnginesProduceIdenticalAntibodies(t *testing.T) {
	for _, appName := range []string{"apache1", "apache2", "cvs", "squid"} {
		t.Run(appName, func(t *testing.T) {
			seq := runFullCycle(t, appName, false)
			par := runFullCycle(t, appName, true)

			if seq.Attacks()[0].Parallel {
				t.Fatal("sequential run reported the parallel engine")
			}
			if !par.Attacks()[0].Parallel {
				t.Fatal("parallel run reported the sequential engine")
			}

			seqAbs := marshalAll(t, seq.Antibodies())
			parAbs := marshalAll(t, par.Antibodies())
			if len(seqAbs) != len(parAbs) {
				t.Fatalf("antibody count differs: sequential %d, parallel %d", len(seqAbs), len(parAbs))
			}
			for i := range seqAbs {
				if seqAbs[i] != parAbs[i] {
					t.Errorf("antibody %d differs:\nsequential: %s\nparallel:   %s", i, seqAbs[i], parAbs[i])
				}
			}

			// The analyses must have reached the same conclusions, not just
			// the same artifacts.
			sr, pr := seq.Attacks()[0], par.Attacks()[0]
			if sr.CulpritRequestID != pr.CulpritRequestID {
				t.Errorf("culprit differs: sequential %d, parallel %d", sr.CulpritRequestID, pr.CulpritRequestID)
			}
			if !bytes.Equal(sr.CulpritPayload, pr.CulpritPayload) {
				t.Error("culprit payload differs between engines")
			}
			if len(sr.MemBugFindings) != len(pr.MemBugFindings) {
				t.Errorf("membug findings differ: sequential %d, parallel %d", len(sr.MemBugFindings), len(pr.MemBugFindings))
			}
			if sr.TaintDetected != pr.TaintDetected {
				t.Error("taint detection differs between engines")
			}
			if sr.SliceNodes != pr.SliceNodes || sr.SliceInstrs != pr.SliceInstrs {
				t.Errorf("slice differs: sequential %d/%d, parallel %d/%d",
					sr.SliceNodes, sr.SliceInstrs, pr.SliceNodes, pr.SliceInstrs)
			}
			if sr.SliceConsistent != pr.SliceConsistent {
				t.Error("slice consistency differs between engines")
			}
		})
	}
}

// gateFinding is what gateAnalyzer returns once released.
type gateFinding struct{}

func (gateFinding) Analyzer() string { return "test.gate" }
func (gateFinding) Summary() string  { return "gate released" }

// gateAnalyzer is a custom deferred-tier analyzer whose Run blocks until the
// test releases it — it makes the deferred tier's wall-clock arbitrarily
// long, so anything that completes while the gate is held is proven
// independent of deferred-analysis time.
type gateAnalyzer struct {
	started chan struct{}
	release chan struct{}
}

func (g *gateAnalyzer) Name() string        { return "test.gate" }
func (g *gateAnalyzer) Cost() analysis.Tier { return analysis.TierDeferred }
func (g *gateAnalyzer) Run(ctx *analysis.Context, sb *analysis.Sandbox) (analysis.Finding, error) {
	close(g.started)
	<-g.release
	return gateFinding{}, nil
}

// TestDeferredTierCompletesAfterServiceResumes pins the tentpole property:
// the antibody ships, recovery completes, and the guest serves post-recovery
// traffic while the deferred tier is still running — so TimeToFinalAntibody
// and time-to-resume-service are independent of slicing (deferred) wall-clock,
// which the gate analyzer stretches indefinitely. It also exercises the
// async-report contract under the race detector: a concurrent reader touches
// the deferred fields only after Done() while the guest is still serving.
func TestDeferredTierCompletesAfterServiceResumes(t *testing.T) {
	gate := &gateAnalyzer{started: make(chan struct{}), release: make(chan struct{})}
	reg := DefaultRegistry()
	if err := reg.Register(gate); err != nil {
		t.Fatal(err)
	}
	s, spec := newSweeperFor(t, "squid", func(c *Config) { c.Registry = reg })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "squid", 0, 4)
	s.Submit(payload, "worm", true)
	submitBenign(s, "squid", 4, 4)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	report := s.Attacks()[0]

	// The deferred goroutine reached the gate (slicing, registered before the
	// gate, has already finished), yet the report must still be open...
	<-gate.started
	select {
	case <-report.Done():
		t.Fatal("report sealed while a deferred analyzer was still running")
	default:
	}
	// ...while everything client-visible is already finished: recovery,
	// the final antibody, and its publication timestamp.
	if !report.Recovered {
		t.Fatal("recovery did not complete before the deferred tier")
	}
	if report.FinalAntibody == nil {
		t.Fatal("final antibody not published before the deferred tier")
	}
	if report.TimeToFinalAntibody <= 0 {
		t.Fatal("TimeToFinalAntibody not recorded before the deferred tier")
	}

	// The guest serves fresh post-recovery traffic with the deferred tier
	// still outstanding.
	if got := submitBenign(s, "squid", 100, 4); got != 4 {
		t.Fatalf("post-recovery submissions accepted = %d, want 4", got)
	}
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll after recovery: %v", err)
	}

	// A concurrent reader obeys the contract: fields are read only after
	// Done(). Under -race this validates the report's synchronisation while
	// the serving goroutine is still active.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		report.Wait()
		if !report.SliceConsistent {
			t.Errorf("slice inconsistent after Done: missing %v", report.MissingFromSlice)
		}
		if report.TotalAnalysisTime < report.TimeToFinalAntibody {
			t.Error("TotalAnalysisTime (includes deferred tier) below TimeToFinalAntibody")
		}
		if report.FindingFor("test.gate") == nil {
			t.Error("custom deferred analyzer's finding not recorded")
		}
		// The seal covers the recovery fields too: the report only closes
		// once both the handler goroutine and the deferred tier finished.
		if !report.Recovered || report.RecoveryTime <= 0 {
			t.Error("recovery fields not stable after Done")
		}
	}()
	close(gate.release)
	<-readerDone

	// The per-analyzer latency recorder saw every analyzer, custom included.
	names := make(map[string]bool)
	for _, l := range s.AnalyzerLatencies() {
		names[l.Name] = true
	}
	for _, want := range []string{"membug", "taint", "slicing", "test.gate"} {
		if !names[want] {
			t.Errorf("no latency recorded for analyzer %q (have %v)", want, names)
		}
	}
}

// TestConfigAnalysesSelection runs a cycle with only membug selected: taint
// and slicing must not run, the culprit comes from the isolation fallback,
// and the report — having no deferred tier — is sealed synchronously.
func TestConfigAnalysesSelection(t *testing.T) {
	s, spec := newSweeperFor(t, "squid", func(c *Config) { c.Analyses = []string{"membug"} })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "squid", 0, 4)
	s.Submit(payload, "worm", true)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	r := s.Attacks()[0]
	select {
	case <-r.Done():
	default:
		t.Error("report with no deferred analyzers should be sealed when ServeAll returns")
	}
	if len(r.MemBugFindings) == 0 {
		t.Error("selected membug analyzer did not run")
	}
	if r.TaintDetected || len(r.TaintFindings) != 0 {
		t.Error("taint ran despite not being selected")
	}
	if r.SliceNodes != 0 {
		t.Error("slicing ran despite not being selected")
	}
	if !r.IsolationUsed || r.CulpritRequestID < 0 {
		t.Error("isolation fallback did not identify the exploit input")
	}
	if r.FinalAntibody == nil || len(r.FinalAntibody.Sigs) == 0 {
		t.Error("final antibody incomplete without taint/slicing")
	}
}

// TestConfigUnknownAnalysisRejected: naming an unregistered analysis — or
// the same analysis twice — is a construction-time error, not a silent no-op
// (a duplicate would run the analyzer twice and desynchronise the joins).
func TestConfigUnknownAnalysisRejected(t *testing.T) {
	spec, err := apps.ByName("squid")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Analyses = []string{"membug", "bogus"}
	if _, err := New(spec.Name, spec.Image, spec.Options, cfg); err == nil {
		t.Fatal("New accepted an unknown analysis name")
	}
	cfg.Analyses = []string{"membug", "membug"}
	if _, err := New(spec.Name, spec.Image, spec.Options, cfg); err == nil {
		t.Fatal("New accepted a duplicate analysis name")
	}
}

// fastStub is a custom fast-tier analyzer; its finding and step timing must
// land in the report like the builtin fast analyzers'.
type fastStub struct{}

func (fastStub) Name() string        { return "test.faststub" }
func (fastStub) Cost() analysis.Tier { return analysis.TierFast }
func (fastStub) Run(ctx *analysis.Context, sb *analysis.Sandbox) (analysis.Finding, error) {
	sb.Run()
	return gateFinding{}, nil
}

// TestCustomFastAnalyzerRecordedInReport: a registered custom fast-tier
// analyzer contributes a finding, a Steps entry and a latency sample.
func TestCustomFastAnalyzerRecordedInReport(t *testing.T) {
	reg := DefaultRegistry()
	if err := reg.Register(fastStub{}); err != nil {
		t.Fatal(err)
	}
	s, spec := newSweeperFor(t, "cvs", func(c *Config) { c.Registry = reg })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "cvs", 0, 4)
	s.Submit(payload, "worm", true)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	s.WaitAnalyses()
	r := s.Attacks()[0]
	if r.FindingFor("test.faststub") == nil {
		t.Error("custom fast analyzer's finding not recorded")
	}
	found := false
	for _, st := range r.StepDurations() {
		if st.Name == "test.faststub" {
			found = true
		}
	}
	if !found {
		t.Error("custom fast analyzer has no Steps entry")
	}
	names := make(map[string]bool)
	for _, l := range s.AnalyzerLatencies() {
		names[l.Name] = true
	}
	if !names["test.faststub"] {
		t.Error("custom fast analyzer has no latency sample")
	}
}

// TestFullCycleBothEngines runs the complete defence cycle under each engine
// and asserts the pipeline outcome (detection, analysis, inoculation and
// recovery) end to end for all four apps.
func TestFullCycleBothEngines(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for _, appName := range []string{"apache1", "apache2", "cvs", "squid"} {
			name := fmt.Sprintf("%s/sequential", appName)
			if parallel {
				name = fmt.Sprintf("%s/parallel", appName)
			}
			t.Run(name, func(t *testing.T) {
				s := runFullCycle(t, appName, parallel)
				r := s.Attacks()[0]
				if !r.Recovered {
					t.Error("recovery did not complete")
				}
				if s.Halted() {
					t.Error("protected server halted")
				}
				if r.CulpritRequestID < 0 {
					t.Error("exploit input was not identified")
				}
				if r.FinalAntibody == nil || len(r.FinalAntibody.VSEFs) == 0 {
					t.Fatal("no final antibody / VSEFs generated")
				}
				if len(r.FinalAntibody.Sigs) == 0 {
					t.Error("no input signature generated")
				}
				if !r.SliceConsistent {
					t.Errorf("backward slice missing implicated instructions: %v", r.MissingFromSlice)
				}
				// Inoculation: the identical exploit must now be filtered.
				if s.Submit(r.CulpritPayload, "worm", true) {
					t.Error("identical exploit not filtered after recovery")
				}
			})
		}
	}
}
