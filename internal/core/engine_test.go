package core

import (
	"bytes"
	"fmt"
	"testing"

	"sweeper/internal/antibody"
	"sweeper/internal/exploit"
)

// runFullCycle drives the complete detect → analyze → inoculate → recover
// cycle for one app under the given engine and returns the Sweeper.
func runFullCycle(t *testing.T, appName string, parallel bool) *Sweeper {
	t.Helper()
	s, spec := newSweeperFor(t, appName, func(c *Config) { c.ParallelAnalysis = parallel })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	const before, after = 8, 8
	submitBenign(s, appName, 0, before)
	if !s.Submit(payload, "worm", true) {
		t.Fatal("exploit was filtered before any antibody existed")
	}
	submitBenign(s, appName, before, after)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	if len(s.Attacks()) != 1 {
		t.Fatalf("attacks = %d, want 1", len(s.Attacks()))
	}
	return s
}

func marshalAll(t *testing.T, abs []*antibody.Antibody) []string {
	t.Helper()
	out := make([]string, len(abs))
	for i, a := range abs {
		data, err := a.Marshal()
		if err != nil {
			t.Fatalf("marshalling antibody %s: %v", a.ID, err)
		}
		out[i] = string(data)
	}
	return out
}

// TestParallelAndSequentialEnginesProduceIdenticalAntibodies is the
// cross-check the sequential engine is kept for: both engines replay the
// same attack window from the same checkpoint, so every antibody (initial,
// refined, final — VSEFs, signatures, exploit input and all) must be
// byte-identical, for every evaluation application.
func TestParallelAndSequentialEnginesProduceIdenticalAntibodies(t *testing.T) {
	for _, appName := range []string{"apache1", "apache2", "cvs", "squid"} {
		t.Run(appName, func(t *testing.T) {
			seq := runFullCycle(t, appName, false)
			par := runFullCycle(t, appName, true)

			if seq.Attacks()[0].Parallel {
				t.Fatal("sequential run reported the parallel engine")
			}
			if !par.Attacks()[0].Parallel {
				t.Fatal("parallel run reported the sequential engine")
			}

			seqAbs := marshalAll(t, seq.Antibodies())
			parAbs := marshalAll(t, par.Antibodies())
			if len(seqAbs) != len(parAbs) {
				t.Fatalf("antibody count differs: sequential %d, parallel %d", len(seqAbs), len(parAbs))
			}
			for i := range seqAbs {
				if seqAbs[i] != parAbs[i] {
					t.Errorf("antibody %d differs:\nsequential: %s\nparallel:   %s", i, seqAbs[i], parAbs[i])
				}
			}

			// The analyses must have reached the same conclusions, not just
			// the same artifacts.
			sr, pr := seq.Attacks()[0], par.Attacks()[0]
			if sr.CulpritRequestID != pr.CulpritRequestID {
				t.Errorf("culprit differs: sequential %d, parallel %d", sr.CulpritRequestID, pr.CulpritRequestID)
			}
			if !bytes.Equal(sr.CulpritPayload, pr.CulpritPayload) {
				t.Error("culprit payload differs between engines")
			}
			if len(sr.MemBugFindings) != len(pr.MemBugFindings) {
				t.Errorf("membug findings differ: sequential %d, parallel %d", len(sr.MemBugFindings), len(pr.MemBugFindings))
			}
			if sr.TaintDetected != pr.TaintDetected {
				t.Error("taint detection differs between engines")
			}
			if sr.SliceNodes != pr.SliceNodes || sr.SliceInstrs != pr.SliceInstrs {
				t.Errorf("slice differs: sequential %d/%d, parallel %d/%d",
					sr.SliceNodes, sr.SliceInstrs, pr.SliceNodes, pr.SliceInstrs)
			}
			if sr.SliceConsistent != pr.SliceConsistent {
				t.Error("slice consistency differs between engines")
			}
		})
	}
}

// TestFullCycleBothEngines runs the complete defence cycle under each engine
// and asserts the pipeline outcome (detection, analysis, inoculation and
// recovery) end to end for all four apps.
func TestFullCycleBothEngines(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		for _, appName := range []string{"apache1", "apache2", "cvs", "squid"} {
			name := fmt.Sprintf("%s/sequential", appName)
			if parallel {
				name = fmt.Sprintf("%s/parallel", appName)
			}
			t.Run(name, func(t *testing.T) {
				s := runFullCycle(t, appName, parallel)
				r := s.Attacks()[0]
				if !r.Recovered {
					t.Error("recovery did not complete")
				}
				if s.Halted() {
					t.Error("protected server halted")
				}
				if r.CulpritRequestID < 0 {
					t.Error("exploit input was not identified")
				}
				if r.FinalAntibody == nil || len(r.FinalAntibody.VSEFs) == 0 {
					t.Fatal("no final antibody / VSEFs generated")
				}
				if len(r.FinalAntibody.Sigs) == 0 {
					t.Error("no input signature generated")
				}
				if !r.SliceConsistent {
					t.Errorf("backward slice missing implicated instructions: %v", r.MissingFromSlice)
				}
				// Inoculation: the identical exploit must now be filtered.
				if s.Submit(r.CulpritPayload, "worm", true) {
					t.Error("identical exploit not filtered after recovery")
				}
			})
		}
	}
}
