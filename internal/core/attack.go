package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sweeper/internal/analysis"
	"sweeper/internal/analysis/coredump"
	"sweeper/internal/analysis/membug"
	"sweeper/internal/analysis/slicing"
	"sweeper/internal/analysis/taint"
	"sweeper/internal/antibody"
	"sweeper/internal/monitor"
	"sweeper/internal/proc"
	"sweeper/internal/replay"
	"sweeper/internal/vm"
)

// StepTiming records the wall-clock duration of one analysis component
// (Table 3's "component diagnosis time").
type StepTiming struct {
	Name     string
	Duration time.Duration
}

// AttackReport captures everything Sweeper learned and did about one attack:
// the detection event, the result of each analysis step, the antibodies
// generated (and when), and the recovery outcome. Tables 2 and 3 are built
// from these reports.
//
// A report is completed asynchronously: the deferred analysis tier (the
// slicing cross-check) finishes after recovery has already resumed service,
// so HandleAttack returns — and the guest serves traffic again — while the
// deferred fields (SliceNodes, SliceInstrs, SliceConsistent,
// MissingFromSlice, TotalAnalysisTime and the deferred Steps entries) are
// still being filled in. Done is closed once the report is sealed — after
// BOTH the attack-handling goroutine (analysis, antibodies, recovery) and
// the deferred tier have finished — so every field read after Done (or
// Wait) is stable.
type AttackReport struct {
	Seq          int
	DetectedAtMs uint64
	Detection    monitor.Detection
	// Parallel records which analysis engine handled the attack.
	Parallel bool

	// Analysis results.
	CoreDump         *coredump.Report
	MemBugFindings   []membug.Finding
	TaintFindings    []taint.Finding
	TaintDetected    bool
	SliceNodes       int
	SliceInstrs      int
	SliceConsistent  bool
	MissingFromSlice []int
	// SliceRestricted says the deferred slicing replay was restricted to the
	// culprit request because both fast-tier analyses had implicated
	// instructions (the cheap, focused cross-check).
	SliceRestricted bool

	// Exploit input identification.
	CulpritRequestID int
	CulpritPayload   []byte
	IsolationUsed    bool

	// Antibodies, in the order they became available.
	InitialAntibody *antibody.Antibody
	RefinedAntibody *antibody.Antibody
	FinalAntibody   *antibody.Antibody

	// Wall-clock timings measured from the moment of detection.
	TimeToFirstVSEF     time.Duration
	TimeToBestVSEF      time.Duration
	InitialAnalysisTime time.Duration
	// TimeToFinalAntibody is when the final antibody (VSEFs + input
	// signature + exploit input) was published. It excludes the deferred
	// tier, which the antibody does not depend on.
	TimeToFinalAntibody time.Duration
	// TotalAnalysisTime is when the last analysis (including the deferred
	// tier, which overlaps recovery and resumed service) completed. Deferred;
	// stable after Done.
	TotalAnalysisTime time.Duration
	Steps             []StepTiming

	// Recovery.
	Recovered bool
	// RecoveryPipelined reports that the live process adopted the state of a
	// prefix replay that ran concurrently with the analyses (the pipelined
	// recovery path) instead of re-executing the benign history serially
	// after them.
	RecoveryPipelined  bool
	RecoveryTime       time.Duration
	RecoveryVirtualMs  uint64
	RecoveryDiverged   bool
	RecoveryDivergence string
	// BadProbesRemoved lists filters that raised violations while the known
	// benign history replayed during recovery. A filter that fires on
	// requests which previously completed service is wrong by definition
	// (incorrect — or malicious, since VSEF-only antibodies from peers are
	// applied before any exploit-replay verification is possible), so
	// recovery uninstalls it and retries rather than letting it take the
	// service down.
	BadProbesRemoved []string

	// mu seals the deferred-tier fields (and Steps, which both tiers append
	// to) until done closes. parts counts the writers that must finish before
	// the report seals: the attack-handling goroutine itself, plus the
	// deferred-tier goroutine when one is launched; whichever finishes last
	// closes done (the atomic decrements order their writes before the close).
	mu       sync.Mutex
	done     chan struct{}
	parts    atomic.Int32
	findings map[string]analysis.Finding
	errs     map[string]string
}

func newAttackReport(seq int, detectedAtMs uint64, det monitor.Detection) *AttackReport {
	r := &AttackReport{
		Seq:              seq,
		DetectedAtMs:     detectedAtMs,
		Detection:        det,
		CulpritRequestID: -1,
		done:             make(chan struct{}),
		findings:         make(map[string]analysis.Finding),
		errs:             make(map[string]string),
	}
	r.parts.Store(1) // the attack-handling goroutine
	return r
}

// Done returns a channel that is closed once every analysis — including the
// deferred tier that completes after recovery — has finished and the report's
// fields are final.
func (r *AttackReport) Done() <-chan struct{} { return r.done }

// Wait blocks until the report is complete.
func (r *AttackReport) Wait() { <-r.done }

// FindingFor returns the named analyzer's finding for this attack, or nil.
// Deferred-tier findings are present only after Done.
func (r *AttackReport) FindingFor(analyzer string) analysis.Finding {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.findings[analyzer]
}

// ErrorFor returns why the named analyzer produced no finding for this
// attack — a sandbox-construction or Run error — or "" if it did not fail.
// An analyzer that ran cleanly and found nothing has neither a finding nor
// an error. Deferred-tier entries are present only after Done.
func (r *AttackReport) ErrorFor(analyzer string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errs[analyzer]
}

// finishPart retires one report writer; the last one seals the report.
func (r *AttackReport) finishPart() {
	if r.parts.Add(-1) == 0 {
		close(r.done)
	}
}

// addPart registers an additional report writer (the deferred-tier
// goroutine). It must be called before the corresponding finishPart can run.
func (r *AttackReport) addPart() { r.parts.Add(1) }

// addStep appends a component timing under the report mutex (the recovery
// step on the attack-handling goroutine races the deferred tier's entries
// otherwise).
func (r *AttackReport) addStep(name string, d time.Duration) {
	r.mu.Lock()
	r.Steps = append(r.Steps, StepTiming{Name: name, Duration: d})
	r.mu.Unlock()
}

// StepDurations returns a copy of the per-component timings recorded so far.
func (r *AttackReport) StepDurations() []StepTiming {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]StepTiming(nil), r.Steps...)
}

// recordFinding stores an analyzer's finding for FindingFor.
func (r *AttackReport) recordFinding(name string, f analysis.Finding) {
	if f == nil {
		return
	}
	r.mu.Lock()
	r.findings[name] = f
	r.mu.Unlock()
}

// recordRunOutcome stores one analyzer's finding and failure, if any, so a
// failed analysis is distinguishable from one that found nothing.
func (r *AttackReport) recordRunOutcome(ar *analyzerRun) {
	r.recordFinding(ar.a.Name(), ar.finding)
	if ar.err != nil {
		r.mu.Lock()
		r.errs[ar.a.Name()] = ar.err.Error()
		r.mu.Unlock()
	}
}

// recordAnalyzer folds one completed deferred analyzer into the report.
func (r *AttackReport) recordAnalyzer(ar *analyzerRun) {
	if res, ok := ar.finding.(*slicing.Result); ok {
		r.mu.Lock()
		r.SliceNodes = res.Nodes
		r.SliceInstrs = res.Instrs
		r.MissingFromSlice = res.Missing
		r.SliceConsistent = res.Consistent
		r.SliceRestricted = res.Restricted
		r.mu.Unlock()
	}
	r.recordRunOutcome(ar)
	r.addStep(ar.stepName, ar.dur)
}

// BestVSEF returns the most refined VSEF available (refined if the memory-bug
// step produced one, otherwise the initial one).
func (r *AttackReport) BestVSEF() *antibody.VSEF {
	if r.RefinedAntibody != nil && len(r.RefinedAntibody.VSEFs) > 0 {
		return r.RefinedAntibody.VSEFs[len(r.RefinedAntibody.VSEFs)-1]
	}
	if r.InitialAntibody != nil && len(r.InitialAntibody.VSEFs) > 0 {
		return r.InitialAntibody.VSEFs[0]
	}
	return nil
}

func (s *Sweeper) newAntibodyID(stage antibody.Stage) string {
	owner := s.name
	if s.cfg.InstanceID != "" {
		owner = s.cfg.InstanceID
	}
	return fmt.Sprintf("%s-attack%d-%s", owner, s.attackSeq, stage)
}

func (s *Sweeper) publish(a *antibody.Antibody) {
	if !s.cfg.ProduceAntibodies {
		// Consumer role: the attack is detected, analysed and recovered from,
		// but nothing leaves this host — the report keeps the antibody stages
		// for inspection, Antibodies() and the fan-out stay empty.
		return
	}
	s.antibodies = append(s.antibodies, a)
	if s.OnAntibody != nil {
		s.OnAntibody(a)
	}
}

// prefixReplay is a recovery clone replaying the benign history prefix —
// everything logged before the suspect request — concurrently with the
// analysis tier. join delivers the finished clone exactly once.
type prefixReplay struct {
	suspect int
	ch      chan prefixResult
}

type prefixResult struct {
	clone *proc.Process
	stop  *vm.StopInfo
}

// startPrefixReplay forks a recovery clone from the checkpoint and sets it
// replaying the history up to (but not including) the request being served at
// detection time. The fork happens synchronously — the clone must capture the
// skip/excise state of the moment of detection, before recovery mutates it —
// but the replay itself runs on its own goroutine, overlapped with the
// analyses. Returns nil when no request was in flight (nothing to pin the
// prefix against).
func (s *Sweeper) startPrefixReplay(snap *proc.Snapshot) *prefixReplay {
	suspect := s.proc.CurrentRequestID()
	if suspect == 0 {
		return nil
	}
	clone, err := s.proc.Clone(snap)
	if err != nil {
		return nil
	}
	// The serial recovery path replays with the temporary drops cleared
	// (ClearDropped below); the prefix must see the same history.
	clone.ClearDropped()
	clone.SetReplayStopBefore(suspect)
	pr := &prefixReplay{suspect: suspect, ch: make(chan prefixResult, 1)}
	go func() {
		stop := clone.Run(s.cfg.ReplayBudget)
		pr.ch <- prefixResult{clone: clone, stop: stop}
	}()
	return pr
}

// snapshotForAnalysis picks the most recent checkpoint taken before the
// current (suspected) attack request was read in.
func (s *Sweeper) snapshotForAnalysis() *proc.Snapshot {
	// Find the log index of the request being served when the monitor
	// tripped; any checkpoint at or before that index predates the request.
	curID := s.proc.CurrentRequestID()
	if curID != 0 {
		events := s.proc.Log.Events()
		for i, e := range events {
			if e.Kind == replay.EventRequest && e.RequestID == curID {
				if snap, err := s.ckpt.BeforeLogIndex(i); err == nil {
					return snap
				}
				break
			}
		}
	}
	return s.ckpt.Latest()
}

// HandleAttack runs the full post-detection pipeline: memory-state analysis,
// the fast analysis tier on pooled replay sandboxes (gating antibody
// generation and distribution), and rollback/re-execution recovery with the
// attack input dropped. The deferred analysis tier (the slicing cross-check)
// is left running on its own goroutine: it completes after recovery has
// resumed service and seals the returned report (AttackReport.Done).
func (s *Sweeper) HandleAttack(stop *vm.StopInfo, det monitor.Detection) *AttackReport {
	s.attackSeq++
	t0 := time.Now()
	report := newAttackReport(s.attackSeq, s.proc.Machine.NowMillis(), det)

	// --- Step 1: memory-state (core dump) analysis, no rollback needed. ---
	t := time.Now()
	cd := coredump.Analyze(s.proc, stop)
	report.CoreDump = cd
	initVSEF := antibody.FromCoreDump(s.newAntibodyID("initial")+"-vsef", s.name, cd)
	report.addStep("memory-state", time.Since(t))

	initial := &antibody.Antibody{
		ID:          s.newAntibodyID(antibody.StageInitial),
		Program:     s.name,
		Stage:       antibody.StageInitial,
		CreatedAtMs: s.proc.Machine.NowMillis(),
		Notes:       []string{cd.Summary()},
	}
	if initVSEF != nil {
		initial.VSEFs = append(initial.VSEFs, initVSEF)
	}
	report.InitialAntibody = initial
	report.TimeToFirstVSEF = time.Since(t0)
	s.publish(initial)

	snap := s.snapshotForAnalysis()
	if snap == nil {
		// Nothing to roll back to: deploy what we have and give up on
		// recovery (the caller will restart the service).
		report.TotalAnalysisTime = time.Since(t0)
		report.finishPart()
		return report
	}

	// Pipelined recovery: the replay of the history prefix strictly before
	// the suspect request is the same whatever the analyses conclude, so it
	// starts now, on a recovery clone, and proceeds concurrently with the
	// whole analysis tier below. Only a tool- and probe-free live machine can
	// adopt the result: stateful monitors and previously installed VSEF
	// probes rebuild their shadow state during a serial replay, which the
	// clone (which carries neither) cannot stand in for.
	var prefix *prefixReplay
	if s.cfg.PipelinedRecovery && s.proc.Machine.ProbeCount() == 0 &&
		len(s.proc.Machine.Tools()) == 0 {
		prefix = s.startPrefixReplay(snap)
	}

	// --- Steps 2-4: the heavyweight rollback-and-replay analyses, scheduled
	// by the pipeline. Each analyzer runs on its own (pooled) copy-on-write
	// clone of the checkpoint — concurrently when cfg.ParallelAnalysis is set;
	// the live process is never rolled back for analysis, only for recovery
	// below. Each fast-tier analyzer is joined exactly when its result is
	// needed, so every antibody stage ships as early as its inputs allow.
	run := s.startAnalyses(snap)
	run.ctx.Implicate("coredump", cd.FaultPC)
	report.Parallel = run.parallel

	// --- Step 2 results: memory-bug detection and the refined antibody. ---
	var membugPrimary *membug.Finding
	if ar := run.wait(membug.AnalyzerName); ar != nil {
		if res, ok := ar.finding.(*membug.Result); ok {
			report.MemBugFindings = res.Findings
			membugPrimary = res.Primary
		}
		report.recordRunOutcome(ar)
		report.addStep(ar.stepName, ar.dur)
	}
	refinedVSEF := antibody.FromMemBug(s.newAntibodyID("refined")+"-vsef", s.name, membugPrimary)
	if refinedVSEF != nil {
		refined := &antibody.Antibody{
			ID:          s.newAntibodyID(antibody.StageRefined),
			Program:     s.name,
			Stage:       antibody.StageRefined,
			CreatedAtMs: s.proc.Machine.NowMillis(),
		}
		if initVSEF != nil {
			refined.VSEFs = append(refined.VSEFs, initVSEF)
		}
		refined.VSEFs = append(refined.VSEFs, refinedVSEF)
		if membugPrimary != nil {
			refined.Notes = append(refined.Notes, membugPrimary.Summary())
		}
		report.RefinedAntibody = refined
		s.publish(refined)
		report.TimeToBestVSEF = time.Since(t0)
	} else {
		report.TimeToBestVSEF = report.TimeToFirstVSEF
	}

	// --- Step 3 results: taint analysis and exploit-input identification. ---
	var taintVSEF *antibody.VSEF
	if ar := run.wait(taint.AnalyzerName); ar != nil {
		if res, ok := ar.finding.(*taint.Result); ok {
			report.TaintFindings = res.Findings
			report.TaintDetected = res.Detected
			report.CulpritRequestID = res.Culprit
			if res.Tracker != nil {
				taintVSEF = antibody.FromTaint(s.newAntibodyID("taint")+"-vsef", s.name, res.Tracker)
			}
		}
		report.recordRunOutcome(ar)
		report.addStep(ar.stepName, ar.dur)
	}
	if report.CulpritRequestID < 0 {
		t = time.Now()
		report.CulpritRequestID = s.isolateInput(snap)
		report.IsolationUsed = true
		report.addStep("input-isolation", time.Since(t))
	}
	if report.CulpritRequestID >= 0 {
		report.CulpritPayload = s.payloadOf(report.CulpritRequestID)
		// The deferred tier restricts itself to the culprit request; feed it
		// the isolation fallback's answer too (SetCulprit keeps the first).
		run.ctx.SetCulprit(report.CulpritRequestID)
	}
	// Join any remaining fast-tier analyzers (custom registrations): the
	// final antibody must not ship before the tier that gates it. membug and
	// taint were folded into the report above; fold the rest here.
	run.waitFast()
	for _, ar := range run.fast {
		if name := ar.a.Name(); name != membug.AnalyzerName && name != taint.AnalyzerName {
			report.recordRunOutcome(ar)
			report.addStep(ar.stepName, ar.dur)
		}
	}
	report.InitialAnalysisTime = time.Since(t0)

	// --- Final antibody: best VSEFs + input signature + exploit input. It
	// ships before the deferred cross-check completes: slicing contributes
	// nothing to the antibody, so hosts should not wait for it. ---
	final := &antibody.Antibody{
		ID:          s.newAntibodyID(antibody.StageFinal),
		Program:     s.name,
		Stage:       antibody.StageFinal,
		CreatedAtMs: s.proc.Machine.NowMillis(),
	}
	if initVSEF != nil {
		final.VSEFs = append(final.VSEFs, initVSEF)
	}
	if refinedVSEF != nil {
		final.VSEFs = append(final.VSEFs, refinedVSEF)
	}
	if taintVSEF != nil {
		final.VSEFs = append(final.VSEFs, taintVSEF)
	}
	if report.CulpritPayload != nil {
		sig := antibody.ExactSignature(final.ID+"-sig", report.CulpritPayload)
		final.Sigs = append(final.Sigs, sig)
		final.ExploitInput = report.CulpritPayload
	}
	report.FinalAntibody = final
	s.publish(final)
	report.TimeToFinalAntibody = time.Since(t0)

	// --- Step 4: the deferred tier (backward-slicing cross-check) leaves the
	// client-visible path entirely: it completes on its own goroutine while
	// recovery below — and the resumed service after it — proceeds, then
	// seals the report. ---
	run.finishDeferredAsync(report, t0)

	// --- Step 5: recovery by rollback and re-execution without the attack.
	// The analysis replays above ran on shadow clones, so the live process's
	// clock still reads the moment of detection; the client-visible service
	// gap only advances by the rollback and re-execution below (this is what
	// Figure 5 measures as the recovery gap).
	t = time.Now()
	recoveryStartMs := s.proc.Machine.NowMillis()
	s.proc.ClearDropped()
	if report.CulpritRequestID >= 0 {
		s.proc.ExciseRequests(report.CulpritRequestID)
	}
	// Re-execute the logged, non-malicious requests in the sandbox; once the
	// log is exhausted the process is back in a safe, up-to-date state and is
	// switched to live mode so the ServeAll loop can continue serving queued
	// and future requests (each of which is now covered by the new VSEFs and
	// input filters). The replayed history is known benign — every request in
	// it completed service before — so a probe that raises a violation during
	// this replay is itself faulty: it is uninstalled and the replay retried
	// (bounded), instead of a bad filter taking the service down.
	appliedFinal := false
	applyFinal := func() {
		// Probes survive rollbacks; the antibody is installed once, whichever
		// path (and however many serial retries) recovery takes.
		if appliedFinal {
			return
		}
		appliedFinal = true
		if applied, err := final.Apply(s.proc, s.proxy); err == nil {
			s.applied = append(s.applied, applied)
		}
	}
	pipelined := false
	if prefix != nil {
		// Join the concurrent prefix replay. Its state is adoptable only when
		// it suspended cleanly at the suspect's boundary AND the excision
		// decision removed exactly the suspect — if the culprit were an
		// earlier request, excision would reach into the already-replayed
		// prefix and the clone's state would include the attack's effects.
		res := <-prefix.ch
		if res.stop != nil && res.stop.Reason == vm.StopWaitInput &&
			report.CulpritRequestID == prefix.suspect {
			s.proc.AdoptReplayState(res.clone, proc.ModeReplay, false)
			applyFinal()
			// Finish the (usually empty) tail: replay consumes the excised
			// suspect's log entries and reaches the wait-input boundary.
			tail := s.proc.Run(s.cfg.ReplayBudget)
			if tail.Reason == vm.StopWaitInput {
				pipelined = true
				report.RecoveryPipelined = true
				report.Recovered = true
				s.proc.SetMode(proc.ModeLive, false)
				// Start the post-recovery epoch from a fresh checkpoint so
				// later analyses never need to replay across the excised
				// attack.
				s.ckpt.Checkpoint(s.proc)
			}
			// Any other tail stop (e.g. a freshly installed probe raising a
			// violation) falls back to the full serial replay below, which
			// re-rolls back from the checkpoint and keeps the bad-probe
			// removal semantics intact.
		}
	}
	const maxBadProbeRemovals = 3
	for !pipelined {
		s.proc.Rollback(snap, proc.ModeReplay, false)
		applyFinal()
		replayStop := s.proc.Run(s.cfg.ReplayBudget)
		if replayStop.Reason == vm.StopViolation && replayStop.Violation != nil &&
			len(report.BadProbesRemoved) < maxBadProbeRemovals {
			owner := strings.TrimSuffix(replayStop.Violation.Tool, ".tracker")
			removed := s.proc.Machine.RemoveProbes(owner)
			s.proc.Machine.DetachTool(owner + ".source")
			if removed > 0 {
				report.BadProbesRemoved = append(report.BadProbesRemoved, owner)
				continue
			}
		}
		switch replayStop.Reason {
		case vm.StopWaitInput:
			report.Recovered = true
			s.proc.SetMode(proc.ModeLive, false)
			// Start the post-recovery epoch from a fresh checkpoint so later
			// analyses never need to replay across the excised attack.
			s.ckpt.Checkpoint(s.proc)
		default:
			// The replayed benign traffic itself faulted or ran away (should
			// not happen); treat recovery as failed so the caller can fall
			// back to a restart.
			report.Recovered = false
		}
		break
	}
	report.RecoveryTime = time.Since(t)
	report.RecoveryVirtualMs = s.proc.Machine.NowMillis() - recoveryStartMs
	report.RecoveryDiverged, report.RecoveryDivergence = s.proc.Diverged()
	report.addStep("recovery", report.RecoveryTime)
	report.finishPart()
	return report
}

// payloadOf returns the payload of a logged request.
func (s *Sweeper) payloadOf(requestID int) []byte {
	for _, e := range s.proc.Log.Events() {
		if e.Kind == replay.EventRequest && e.RequestID == requestID {
			return append([]byte(nil), e.Data...)
		}
	}
	return nil
}
