package core

import (
	"fmt"
	"strings"
	"time"

	"sweeper/internal/analysis/coredump"
	"sweeper/internal/analysis/membug"
	"sweeper/internal/analysis/taint"
	"sweeper/internal/antibody"
	"sweeper/internal/monitor"
	"sweeper/internal/proc"
	"sweeper/internal/replay"
	"sweeper/internal/vm"
)

// StepTiming records the wall-clock duration of one analysis component
// (Table 3's "component diagnosis time").
type StepTiming struct {
	Name     string
	Duration time.Duration
}

// AttackReport captures everything Sweeper learned and did about one attack:
// the detection event, the result of each analysis step, the antibodies
// generated (and when), and the recovery outcome. Tables 2 and 3 are built
// from these reports.
type AttackReport struct {
	Seq          int
	DetectedAtMs uint64
	Detection    monitor.Detection
	// Parallel records which analysis engine handled the attack.
	Parallel bool

	// Analysis results.
	CoreDump         *coredump.Report
	MemBugFindings   []membug.Finding
	TaintFindings    []taint.Finding
	TaintDetected    bool
	SliceNodes       int
	SliceInstrs      int
	SliceConsistent  bool
	MissingFromSlice []int

	// Exploit input identification.
	CulpritRequestID int
	CulpritPayload   []byte
	IsolationUsed    bool

	// Antibodies, in the order they became available.
	InitialAntibody *antibody.Antibody
	RefinedAntibody *antibody.Antibody
	FinalAntibody   *antibody.Antibody

	// Wall-clock timings measured from the moment of detection.
	TimeToFirstVSEF     time.Duration
	TimeToBestVSEF      time.Duration
	InitialAnalysisTime time.Duration
	// TimeToFinalAntibody is when the final antibody (VSEFs + input
	// signature + exploit input) was published. It excludes the slicing
	// cross-check, which the antibody does not depend on.
	TimeToFinalAntibody time.Duration
	TotalAnalysisTime   time.Duration
	Steps               []StepTiming

	// Recovery.
	Recovered          bool
	RecoveryTime       time.Duration
	RecoveryVirtualMs  uint64
	RecoveryDiverged   bool
	RecoveryDivergence string
	// BadProbesRemoved lists filters that raised violations while the known
	// benign history replayed during recovery. A filter that fires on
	// requests which previously completed service is wrong by definition
	// (incorrect — or malicious, since VSEF-only antibodies from peers are
	// applied before any exploit-replay verification is possible), so
	// recovery uninstalls it and retries rather than letting it take the
	// service down.
	BadProbesRemoved []string
}

// BestVSEF returns the most refined VSEF available (refined if the memory-bug
// step produced one, otherwise the initial one).
func (r *AttackReport) BestVSEF() *antibody.VSEF {
	if r.RefinedAntibody != nil && len(r.RefinedAntibody.VSEFs) > 0 {
		return r.RefinedAntibody.VSEFs[len(r.RefinedAntibody.VSEFs)-1]
	}
	if r.InitialAntibody != nil && len(r.InitialAntibody.VSEFs) > 0 {
		return r.InitialAntibody.VSEFs[0]
	}
	return nil
}

func (s *Sweeper) newAntibodyID(stage antibody.Stage) string {
	owner := s.name
	if s.cfg.InstanceID != "" {
		owner = s.cfg.InstanceID
	}
	return fmt.Sprintf("%s-attack%d-%s", owner, s.attackSeq, stage)
}

func (s *Sweeper) publish(a *antibody.Antibody) {
	s.antibodies = append(s.antibodies, a)
	if s.OnAntibody != nil {
		s.OnAntibody(a)
	}
}

// snapshotForAnalysis picks the most recent checkpoint taken before the
// current (suspected) attack request was read in.
func (s *Sweeper) snapshotForAnalysis() *proc.Snapshot {
	// Find the log index of the request being served when the monitor
	// tripped; any checkpoint at or before that index predates the request.
	curID := s.proc.CurrentRequestID()
	if curID != 0 {
		events := s.proc.Log.Events()
		for i, e := range events {
			if e.Kind == replay.EventRequest && e.RequestID == curID {
				if snap, err := s.ckpt.BeforeLogIndex(i); err == nil {
					return snap
				}
				break
			}
		}
	}
	return s.ckpt.Latest()
}

// HandleAttack runs the full post-detection pipeline: memory-state analysis,
// iterative rollback/replay under the heavyweight tools, antibody generation
// and distribution, and finally rollback/re-execution recovery with the
// attack input dropped.
func (s *Sweeper) HandleAttack(stop *vm.StopInfo, det monitor.Detection) *AttackReport {
	s.attackSeq++
	t0 := time.Now()
	report := &AttackReport{
		Seq:              s.attackSeq,
		DetectedAtMs:     s.proc.Machine.NowMillis(),
		Detection:        det,
		CulpritRequestID: -1,
	}
	step := func(name string, start time.Time) {
		report.Steps = append(report.Steps, StepTiming{Name: name, Duration: time.Since(start)})
	}

	// --- Step 1: memory-state (core dump) analysis, no rollback needed. ---
	t := time.Now()
	cd := coredump.Analyze(s.proc, stop)
	report.CoreDump = cd
	initVSEF := antibody.FromCoreDump(s.newAntibodyID("initial")+"-vsef", s.name, cd)
	step("memory-state", t)

	initial := &antibody.Antibody{
		ID:          s.newAntibodyID(antibody.StageInitial),
		Program:     s.name,
		Stage:       antibody.StageInitial,
		CreatedAtMs: s.proc.Machine.NowMillis(),
		Notes:       []string{cd.Summary()},
	}
	if initVSEF != nil {
		initial.VSEFs = append(initial.VSEFs, initVSEF)
	}
	report.InitialAntibody = initial
	report.TimeToFirstVSEF = time.Since(t0)
	s.publish(initial)

	snap := s.snapshotForAnalysis()
	if snap == nil {
		// Nothing to roll back to: deploy what we have and give up on
		// recovery (the caller will restart the service).
		report.TotalAnalysisTime = time.Since(t0)
		return report
	}

	// --- Steps 2-4: the heavyweight rollback-and-replay analyses. Each runs
	// on its own copy-on-write clone of the checkpoint (concurrently when
	// cfg.ParallelAnalysis is set); the live process is never rolled back for
	// analysis, only for recovery below. Each analysis is joined exactly when
	// its result is needed, so every antibody stage ships as early as its
	// inputs allow.
	run := s.startReplayAnalyses(snap)
	res := run.res
	report.Parallel = s.cfg.ParallelAnalysis

	// --- Step 2 results: memory-bug detection and the refined antibody. ---
	run.waitMemBug()
	report.MemBugFindings = res.memBugFindings
	membugPrimary := res.membugPrimary
	if s.cfg.EnableMemBug {
		report.Steps = append(report.Steps, StepTiming{Name: "memory-bug", Duration: res.membugStep})
	}
	refinedVSEF := antibody.FromMemBug(s.newAntibodyID("refined")+"-vsef", s.name, membugPrimary)
	if refinedVSEF != nil {
		refined := &antibody.Antibody{
			ID:          s.newAntibodyID(antibody.StageRefined),
			Program:     s.name,
			Stage:       antibody.StageRefined,
			CreatedAtMs: s.proc.Machine.NowMillis(),
		}
		if initVSEF != nil {
			refined.VSEFs = append(refined.VSEFs, initVSEF)
		}
		refined.VSEFs = append(refined.VSEFs, refinedVSEF)
		if membugPrimary != nil {
			refined.Notes = append(refined.Notes, membugPrimary.Summary())
		}
		report.RefinedAntibody = refined
		s.publish(refined)
		report.TimeToBestVSEF = time.Since(t0)
	} else {
		report.TimeToBestVSEF = report.TimeToFirstVSEF
	}

	// --- Step 3 results: taint analysis and exploit-input identification. ---
	run.waitTaint(s.cfg.EnableTaint)
	var taintVSEF *antibody.VSEF
	if s.cfg.EnableTaint {
		report.TaintFindings = res.taintFindings
		report.TaintDetected = res.taintDetected
		report.CulpritRequestID = res.taintCulprit
		if res.taintTracker != nil {
			taintVSEF = antibody.FromTaint(s.newAntibodyID("taint")+"-vsef", s.name, res.taintTracker)
		}
		report.Steps = append(report.Steps, StepTiming{Name: "input-taint", Duration: res.taintStep})
	}
	if report.CulpritRequestID < 0 {
		t = time.Now()
		report.CulpritRequestID = s.isolateInput(snap)
		report.IsolationUsed = true
		step("input-isolation", t)
	}
	if report.CulpritRequestID >= 0 {
		report.CulpritPayload = s.payloadOf(report.CulpritRequestID)
	}
	report.InitialAnalysisTime = time.Since(t0)

	// --- Final antibody: best VSEFs + input signature + exploit input. It
	// ships before the slicing cross-check completes: slicing contributes
	// nothing to the antibody, so hosts should not wait for it. ---
	final := &antibody.Antibody{
		ID:          s.newAntibodyID(antibody.StageFinal),
		Program:     s.name,
		Stage:       antibody.StageFinal,
		CreatedAtMs: s.proc.Machine.NowMillis(),
	}
	if initVSEF != nil {
		final.VSEFs = append(final.VSEFs, initVSEF)
	}
	if refinedVSEF != nil {
		final.VSEFs = append(final.VSEFs, refinedVSEF)
	}
	if taintVSEF != nil {
		final.VSEFs = append(final.VSEFs, taintVSEF)
	}
	if report.CulpritPayload != nil {
		sig := antibody.ExactSignature(final.ID+"-sig", report.CulpritPayload)
		final.Sigs = append(final.Sigs, sig)
		final.ExploitInput = report.CulpritPayload
	}
	report.FinalAntibody = final
	s.publish(final)
	report.TimeToFinalAntibody = time.Since(t0)

	// --- Step 4 results: backward slicing (sanity check of the other steps). ---
	run.finishSlicing()
	if s.cfg.EnableSlicing {
		if res.slice != nil {
			report.SliceNodes = res.sliceNodes
			report.SliceInstrs = res.sliceInstrs
			report.MissingFromSlice = res.slice.Verify(s.implicatedInstrs(report)...)
			report.SliceConsistent = len(report.MissingFromSlice) == 0
		}
		report.Steps = append(report.Steps, StepTiming{Name: "slicing", Duration: res.sliceStep})
	}
	report.TotalAnalysisTime = time.Since(t0)

	// --- Step 5: recovery by rollback and re-execution without the attack. ---
	// The analysis replays above ran on shadow clones, so the live process's
	// clock still reads the moment of detection; the client-visible service
	// gap only advances by the rollback and re-execution below (this is what
	// Figure 5 measures as the recovery gap).
	t = time.Now()
	recoveryStartMs := s.proc.Machine.NowMillis()
	s.proc.ClearDropped()
	if report.CulpritRequestID >= 0 {
		s.proc.ExciseRequests(report.CulpritRequestID)
	}
	// Re-execute the logged, non-malicious requests in the sandbox; once the
	// log is exhausted the process is back in a safe, up-to-date state and is
	// switched to live mode so the ServeAll loop can continue serving queued
	// and future requests (each of which is now covered by the new VSEFs and
	// input filters). The replayed history is known benign — every request in
	// it completed service before — so a probe that raises a violation during
	// this replay is itself faulty: it is uninstalled and the replay retried
	// (bounded), instead of a bad filter taking the service down.
	const maxBadProbeRemovals = 3
	for {
		s.proc.Rollback(snap, proc.ModeReplay, false)
		if len(report.BadProbesRemoved) == 0 {
			// Probes survive rollbacks; the antibody is installed once.
			if applied, err := final.Apply(s.proc, s.proxy); err == nil {
				s.applied = append(s.applied, applied)
			}
		}
		replayStop := s.proc.Run(s.cfg.ReplayBudget)
		if replayStop.Reason == vm.StopViolation && replayStop.Violation != nil &&
			len(report.BadProbesRemoved) < maxBadProbeRemovals {
			owner := strings.TrimSuffix(replayStop.Violation.Tool, ".tracker")
			removed := s.proc.Machine.RemoveProbes(owner)
			s.proc.Machine.DetachTool(owner + ".source")
			if removed > 0 {
				report.BadProbesRemoved = append(report.BadProbesRemoved, owner)
				continue
			}
		}
		switch replayStop.Reason {
		case vm.StopWaitInput:
			report.Recovered = true
			s.proc.SetMode(proc.ModeLive, false)
			// Start the post-recovery epoch from a fresh checkpoint so later
			// analyses never need to replay across the excised attack.
			s.ckpt.Checkpoint(s.proc)
		default:
			// The replayed benign traffic itself faulted or ran away (should
			// not happen); treat recovery as failed so the caller can fall
			// back to a restart.
			report.Recovered = false
		}
		break
	}
	report.RecoveryTime = time.Since(t)
	report.RecoveryVirtualMs = s.proc.Machine.NowMillis() - recoveryStartMs
	report.RecoveryDiverged, report.RecoveryDivergence = s.proc.Diverged()
	step("recovery", t)
	return report
}

// payloadOf returns the payload of a logged request.
func (s *Sweeper) payloadOf(requestID int) []byte {
	for _, e := range s.proc.Log.Events() {
		if e.Kind == replay.EventRequest && e.RequestID == requestID {
			return append([]byte(nil), e.Data...)
		}
	}
	return nil
}

// implicatedInstrs collects the static instructions the earlier analysis
// steps blamed, so the slice can confirm or refute them.
func (s *Sweeper) implicatedInstrs(r *AttackReport) []int {
	var out []int
	if r.CoreDump != nil {
		out = append(out, r.CoreDump.FaultPC)
	}
	if len(r.MemBugFindings) > 0 {
		f := r.MemBugFindings[0]
		out = append(out, f.InstrIdx)
		if f.CallerIdx >= 0 {
			out = append(out, f.CallerIdx)
		}
	}
	if len(r.TaintFindings) > 0 {
		out = append(out, r.TaintFindings[0].InstrIdx)
	}
	return out
}
