package core

import (
	"fmt"
	"sync"
	"testing"

	"sweeper/internal/apps"
	"sweeper/internal/exploit"
)

func newFleetWith(t *testing.T, appName string, guests int) (*Fleet, *apps.Spec) {
	t.Helper()
	spec, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	for i := 0; i < guests; i++ {
		cfg := DefaultConfig()
		cfg.ASLRSeed = 42 + int64(i)*7919
		if _, err := f.AddGuest(fmt.Sprintf("%s-%d", appName, i), spec.Name, spec.Image, spec.Options, cfg); err != nil {
			t.Fatal(err)
		}
	}
	return f, spec
}

// TestFleetSharedAntibodyInoculatesOtherGuests is the headline community
// flow: one guest is attacked, and every other guest — never attacked —
// filters the identical exploit afterwards because the antibody reached it
// through the shared store.
func TestFleetSharedAntibodyInoculatesOtherGuests(t *testing.T) {
	const guests = 4
	f, spec := newFleetWith(t, "cvs", guests)
	f.Start()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < guests; i++ {
		name := fmt.Sprintf("cvs-%d", i)
		for r := 0; r < 4; r++ {
			f.Submit(name, exploit.Benign("cvs", r), "client", false)
		}
	}
	if !f.Submit("cvs-0", payload, "worm", true) {
		t.Fatal("exploit filtered before any antibody existed")
	}
	f.Drain()

	if got := len(f.Store().All()); got == 0 {
		t.Fatal("no antibodies reached the shared store")
	}
	// Every guest, including the ones never attacked, must now filter the
	// identical exploit at its proxy.
	for i := 0; i < guests; i++ {
		name := fmt.Sprintf("cvs-%d", i)
		if f.Submit(name, payload, "worm", true) {
			t.Errorf("guest %s accepted the exploit after fleet inoculation", name)
		}
	}
	f.Stop()

	g0, _ := f.Guest("cvs-0")
	if got := len(g0.Sweeper().Attacks()); got != 1 {
		t.Fatalf("guest cvs-0 attacks = %d, want 1", got)
	}
	if !g0.Sweeper().Attacks()[0].Recovered {
		t.Error("guest cvs-0 did not recover")
	}
	for i := 1; i < guests; i++ {
		g, _ := f.Guest(fmt.Sprintf("cvs-%d", i))
		if got := len(g.Sweeper().Attacks()); got != 0 {
			t.Errorf("guest cvs-%d handled %d attacks, want 0 (inoculated)", i, got)
		}
		st, _ := f.Metrics().Guest(fmt.Sprintf("cvs-%d", i))
		if st.AntibodiesAdopted == 0 {
			t.Errorf("guest cvs-%d adopted no antibodies", i)
		}
		if st.FilteredInputs == 0 {
			t.Errorf("guest cvs-%d filtered nothing", i)
		}
	}
	st0, _ := f.Metrics().Guest("cvs-0")
	if st0.AntibodiesGenerated == 0 {
		t.Error("guest cvs-0 generated no antibodies")
	}
}

// TestFleetLateJoinerIsInoculatedFromStore adds a guest after the attack was
// handled: the store replay must inoculate it before it serves anything.
func TestFleetLateJoinerIsInoculatedFromStore(t *testing.T) {
	f, spec := newFleetWith(t, "squid", 1)
	f.Start()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Submit("squid-0", exploit.Benign("squid", 0), "client", false)
	f.Submit("squid-0", payload, "worm", true)
	f.Drain()

	cfg := DefaultConfig()
	cfg.ASLRSeed = 4242
	if _, err := f.AddGuest("squid-late", spec.Name, spec.Image, spec.Options, cfg); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if f.Submit("squid-late", payload, "worm", true) {
		t.Error("late-joining guest accepted the exploit despite store replay")
	}
	f.Stop()
	st, _ := f.Metrics().Guest("squid-late")
	if st.AntibodiesAdopted == 0 {
		t.Error("late joiner adopted no antibodies")
	}
}

// TestFleetAttackAfterAdoptionRecovers pins down a recovery bug the
// concurrent stress test used to hit intermittently: a guest adopts a peer's
// antibody (return guards, taint VSEFs), then is attacked itself with a
// polymorphic variant that slips past the exact input signature. The adopted
// probes detect the attack — and their internal shadow state (saved return
// addresses, taint labels from the attack request) must be dropped when the
// process rolls back for recovery, or the benign replay trips false
// violations and recovery fails.
func TestFleetAttackAfterAdoptionRecovers(t *testing.T) {
	for _, appName := range []string{"apache1", "squid"} {
		t.Run(appName, func(t *testing.T) {
			f, spec := newFleetWith(t, appName, 2)
			f.Start()
			first, err := exploit.ExploitVariant(spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			variant, err := exploit.ExploitVariant(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			names := []string{appName + "-0", appName + "-1"}
			for _, n := range names {
				for r := 0; r < 4; r++ {
					f.Submit(n, exploit.Benign(appName, r), "client", false)
				}
			}
			// Guest 0 is attacked and generates antibodies; guest 1 adopts.
			f.Submit(names[0], first, "worm", true)
			f.Drain()
			st, _ := f.Metrics().Guest(names[1])
			if st.AntibodiesAdopted == 0 {
				t.Fatal("guest 1 adopted nothing; scenario not established")
			}
			// Now the variant hits guest 1: the exact signature misses it, the
			// adopted VSEFs detect it, and recovery must succeed.
			if !f.Submit(names[1], variant, "worm", true) {
				t.Fatal("variant was filtered by the exact signature; test is vacuous")
			}
			for r := 0; r < 4; r++ {
				f.Submit(names[1], exploit.Benign(appName, 100+r), "client", false)
			}
			f.Drain()
			g1, _ := f.Guest(names[1])
			if err := g1.ServeError(); err != nil {
				t.Fatalf("guest 1 serve error: %v", err)
			}
			if g1.Sweeper().Halted() {
				t.Fatal("guest 1 halted")
			}
			st, _ = f.Metrics().Guest(names[1])
			if st.AttacksHandled != 1 || st.Recovered != 1 {
				t.Errorf("guest 1 attacks=%d recovered=%d, want 1/1", st.AttacksHandled, st.Recovered)
			}
			f.Stop()
		})
	}
}

// TestFleetConcurrentAttacksRaceStress attacks every guest in a mixed-app
// fleet simultaneously from concurrent workload goroutines. Run under
// -race (CI does) this exercises the COW page sharing, the clone-based
// parallel analysis engine of every guest at once, and the shared-store
// distribution paths. Every guest must analyse its attack, recover, and end
// up holding antibodies generated by its same-program peers.
func TestFleetConcurrentAttacksRaceStress(t *testing.T) {
	const guestsPerApp = 3
	appNames := []string{"cvs", "squid", "apache1"}
	f := NewFleet()
	payloads := make(map[string][]byte)
	for ai, appName := range appNames {
		spec, err := apps.ByName(appName)
		if err != nil {
			t.Fatal(err)
		}
		payloads[appName], err = exploit.Exploit(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < guestsPerApp; i++ {
			cfg := DefaultConfig()
			cfg.ASLRSeed = 42 + int64(ai*guestsPerApp+i)*104729
			name := fmt.Sprintf("%s-%d", appName, i)
			if _, err := f.AddGuest(name, spec.Name, spec.Image, spec.Options, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Start()

	var wg sync.WaitGroup
	for _, appName := range appNames {
		for i := 0; i < guestsPerApp; i++ {
			wg.Add(1)
			go func(appName string, i int) {
				defer wg.Done()
				name := fmt.Sprintf("%s-%d", appName, i)
				for r := 0; r < 4; r++ {
					f.Submit(name, exploit.Benign(appName, r), "client", false)
				}
				f.Submit(name, payloads[appName], "worm", true)
				for r := 0; r < 4; r++ {
					f.Submit(name, exploit.Benign(appName, 100+r), "client", false)
				}
			}(appName, i)
		}
	}
	wg.Wait()
	f.Drain()
	f.Stop()

	for _, appName := range appNames {
		for i := 0; i < guestsPerApp; i++ {
			name := fmt.Sprintf("%s-%d", appName, i)
			g, ok := f.Guest(name)
			if !ok {
				t.Fatalf("guest %s missing", name)
			}
			if err := g.ServeError(); err != nil {
				t.Errorf("guest %s serve error: %v", name, err)
			}
			s := g.Sweeper()
			if s.Halted() {
				t.Errorf("guest %s halted", name)
			}
			st, _ := f.Metrics().Guest(name)
			// The exploit raced against its peers' antibodies: each guest
			// either handled the attack itself (and recovered) or filtered
			// it thanks to a faster peer.
			switch {
			case st.AttacksHandled > 0:
				if st.Recovered != st.AttacksHandled {
					t.Errorf("guest %s recovered %d of %d attacks", name, st.Recovered, st.AttacksHandled)
				}
			case st.FilteredInputs == 0:
				t.Errorf("guest %s neither handled nor filtered the exploit", name)
			}
			if st.RequestsServed < 8 {
				t.Errorf("guest %s served %d requests, want at least 8", name, st.RequestsServed)
			}
			if st.AttacksHandled == 0 && st.AntibodiesAdopted == 0 {
				t.Errorf("guest %s was not attacked yet adopted nothing", name)
			}
		}
	}
	// Cross-program isolation: no antibody may be adopted by a guest of a
	// different program.
	for _, a := range f.Store().All() {
		found := false
		for _, appName := range appNames {
			if a.Program == appName {
				found = true
			}
		}
		if !found {
			t.Errorf("store antibody %s has unexpected program %q", a.ID, a.Program)
		}
	}
}
