package core

import (
	"fmt"
	"testing"
	"time"

	"sweeper/internal/apps"
	"sweeper/internal/exploit"
)

// TestWorkloadGeneratorOffersAndCompletes drives two guests with open-loop
// generators at a rate far below the service capacity: every offered request
// must complete, the workload window must be paced by the arrival schedule
// (idle gaps advance the virtual clock), and the offered rate must land near
// the configured target.
func TestWorkloadGeneratorOffersAndCompletes(t *testing.T) {
	const (
		guests   = 2
		requests = 60
		rate     = 50.0 // req/s, far below capacity: the guest idles between arrivals
	)
	f, _ := newFleetWith(t, "cvs", guests)
	for i := 0; i < guests; i++ {
		g, _ := f.Guest(fmt.Sprintf("cvs-%d", i))
		if err := g.SetWorkload(WorkloadConfig{
			TargetReqPerSec: rate,
			Requests:        requests,
			Benign:          func(j int) []byte { return exploit.Benign("cvs", j) },
		}); err != nil {
			t.Fatal(err)
		}
	}
	f.Start()
	f.Drain()
	f.Stop()

	for i := 0; i < guests; i++ {
		name := fmt.Sprintf("cvs-%d", i)
		g, _ := f.Guest(name)
		if err := g.ServeError(); err != nil {
			t.Fatalf("%s serve error: %v", name, err)
		}
		wl := g.WorkloadStats()
		if !wl.Done {
			t.Errorf("%s: workload not done: %+v", name, wl)
		}
		if wl.Offered != requests {
			t.Errorf("%s: offered %d requests, want %d", name, wl.Offered, requests)
		}
		if served := g.Sweeper().Process().ServedRequests(); served != requests {
			t.Errorf("%s: served %d requests, want all %d offered", name, served, requests)
		}
		// Open-loop pacing: the last arrival is scheduled at
		// (requests-1)/rate seconds, so the workload window cannot be shorter
		// than that, and at this gentle rate it should not overshoot by much.
		minUs := uint64(float64(requests-1) / rate * 1e6)
		if wl.ElapsedUs < minUs {
			t.Errorf("%s: workload window %d us shorter than the arrival schedule %d us", name, wl.ElapsedUs, minUs)
		}
		if wl.ElapsedUs > 3*minUs {
			t.Errorf("%s: workload window %d us far beyond the arrival schedule %d us", name, wl.ElapsedUs, minUs)
		}
		st, _ := f.Metrics().Guest(name)
		if st.WorkloadOffered != requests || st.OfferedReqPerSec <= 0 || st.CompletedReqPerSec <= 0 {
			t.Errorf("%s: generator stats not surfaced: %+v", name, st)
		}
	}
}

// TestWorkloadGeneratorAttackInjection injects exploit variants into guest
// 0's stream: the attacks must be detected and recovered from while the
// generator keeps offering load, the antibody must inoculate the peer guest,
// and later injections must be rejected at the proxy (counted as rejected
// offers).
func TestWorkloadGeneratorAttackInjection(t *testing.T) {
	const requests = 40
	f, spec := newFleetWith(t, "cvs", 2)
	g0, _ := f.Guest("cvs-0")
	if err := g0.SetWorkload(WorkloadConfig{
		TargetReqPerSec: 500,
		Requests:        requests,
		Benign:          func(j int) []byte { return exploit.Benign("cvs", j) },
		AttackEvery:     10,
		Attack: func(k int) []byte {
			payload, err := exploit.Exploit(spec)
			if err != nil {
				t.Errorf("building exploit: %v", err)
				return []byte("x")
			}
			return payload
		},
	}); err != nil {
		t.Fatal(err)
	}
	g1, _ := f.Guest("cvs-1")
	if err := g1.SetWorkload(WorkloadConfig{
		TargetReqPerSec: 500,
		Requests:        requests,
		Benign:          func(j int) []byte { return exploit.Benign("cvs", j) },
	}); err != nil {
		t.Fatal(err)
	}
	f.Start()
	f.Drain()
	f.Stop()

	if err := g0.ServeError(); err != nil {
		t.Fatalf("cvs-0 serve error: %v", err)
	}
	wl := g0.WorkloadStats()
	if wl.Attacks != requests/10 {
		t.Errorf("cvs-0 injected %d attacks, want %d", wl.Attacks, requests/10)
	}
	if len(g0.Sweeper().Attacks()) == 0 {
		t.Fatal("no attack was handled despite injections")
	}
	if !g0.Sweeper().Attacks()[0].Recovered {
		t.Error("cvs-0 did not recover from the injected attack")
	}
	// The first injection generated the antibody; later identical injections
	// are dropped at the proxy and show up as rejected offers.
	if wl.Rejected == 0 {
		t.Error("no later injection was rejected at the proxy (antibody not applied?)")
	}
	st1, _ := f.Metrics().Guest("cvs-1")
	if st1.AntibodiesAdopted == 0 {
		t.Error("peer guest adopted no antibodies from the attacked guest")
	}
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if f.Submit("cvs-1", payload, "worm", true) {
		t.Error("peer guest accepted the exploit after inoculation")
	}
}

// TestWorkloadGeneratorGuestHaltEndsWorkload pins the shutdown path: when a
// guest dies mid-workload (here: an externally submitted exploit hijacks an
// ASLR-less guest, which exits without an error), the generator must be
// retired — Drain and Stop return instead of waiting on a workload the dead
// guest can never finish.
func TestWorkloadGeneratorGuestHaltEndsWorkload(t *testing.T) {
	spec, err := apps.ByName("apache1")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	cfg := DefaultConfig()
	cfg.ASLR = false // the hijack succeeds and the guest halts
	g, err := f.AddGuest("apache1-0", spec.Name, spec.Image, spec.Options, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetWorkload(WorkloadConfig{
		TargetReqPerSec: 1000,
		Requests:        5000,
		Benign:          func(j int) []byte { return exploit.Benign("apache1", j) },
	}); err != nil {
		t.Fatal(err)
	}
	f.Start()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Submit("apache1-0", payload, "worm", true)

	done := make(chan struct{})
	go func() {
		f.Drain()
		f.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Drain/Stop hung after the guest halted mid-workload")
	}
	if !g.Sweeper().Halted() {
		t.Fatal("guest did not halt; the scenario needs the ASLR-less hijack to succeed")
	}
	wl := g.WorkloadStats()
	if !wl.Done {
		t.Errorf("generator not retired after guest halt: %+v", wl)
	}
	if wl.Offered >= 5000 {
		t.Errorf("generator offered its whole load (%d) despite the halt", wl.Offered)
	}
}

// TestSetWorkloadValidation exercises the config validation and the
// one-generator-per-guest rule.
func TestSetWorkloadValidation(t *testing.T) {
	f, _ := newFleetWith(t, "cvs", 1)
	g, _ := f.Guest("cvs-0")
	benign := func(j int) []byte { return exploit.Benign("cvs", j) }
	for _, bad := range []WorkloadConfig{
		{TargetReqPerSec: 0, Requests: 10, Benign: benign},
		{TargetReqPerSec: 100, Requests: 0, Benign: benign},
		{TargetReqPerSec: 100, Requests: 10},
		{TargetReqPerSec: 100, Requests: 10, Benign: benign, AttackEvery: 5},
	} {
		if err := g.SetWorkload(bad); err == nil {
			t.Errorf("SetWorkload(%+v) accepted an invalid config", bad)
		}
	}
	ok := WorkloadConfig{TargetReqPerSec: 100, Requests: 10, Benign: benign}
	if err := g.SetWorkload(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := g.SetWorkload(ok); err == nil {
		t.Error("second generator on the same guest was accepted")
	}
	f.Start()
	f.Drain()
	f.Stop()
}
