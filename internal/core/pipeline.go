package core

import (
	"fmt"
	"sync"
	"time"

	"sweeper/internal/analysis"
	"sweeper/internal/analysis/membug"
	"sweeper/internal/analysis/slicing"
	"sweeper/internal/analysis/taint"
	"sweeper/internal/proc"
)

// DefaultRegistry returns a registry with the paper's three heavyweight
// rollback-and-replay analyses registered: memory-bug detection and taint
// analysis in the fast tier, backward slicing in the deferred tier.
// Custom analyzers are added on top via Config.Registry.
func DefaultRegistry() *analysis.Registry {
	r := analysis.NewRegistry()
	for _, a := range []analysis.Analyzer{membug.Analyzer{}, taint.Analyzer{}, slicing.Analyzer{}} {
		if err := r.Register(a); err != nil {
			panic(err) // unreachable: fixed, distinct names
		}
	}
	return r
}

// stepNameFor maps builtin analyzer names to the Table 3 step names the
// reports and experiments have always used; custom analyzers report under
// their own name.
func stepNameFor(analyzer string) string {
	switch analyzer {
	case membug.AnalyzerName:
		return "memory-bug"
	case taint.AnalyzerName:
		return "input-taint"
	case slicing.AnalyzerName:
		return "slicing"
	}
	return analyzer
}

// buildAnalyzers resolves the configuration into the analyzer set this
// Sweeper runs per attack, plus the registry they came from (so per-analyzer
// replay budgets are read live — a SetBudget after construction takes effect
// on the next attack). With cfg.Analyses set the listed names are
// authoritative; otherwise every registered analyzer runs, with the builtin
// three individually gated by the Enable* switches.
func buildAnalyzers(cfg Config) ([]analysis.Analyzer, *analysis.Registry, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	var names []string
	if cfg.Analyses != nil {
		names = cfg.Analyses
	} else {
		for _, n := range reg.Names() {
			switch n {
			case membug.AnalyzerName:
				if !cfg.EnableMemBug {
					continue
				}
			case taint.AnalyzerName:
				if !cfg.EnableTaint {
					continue
				}
			case slicing.AnalyzerName:
				if !cfg.EnableSlicing {
					continue
				}
			}
			names = append(names, n)
		}
	}
	out := make([]analysis.Analyzer, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return nil, nil, fmt.Errorf("core: analysis %q listed twice in Config.Analyses", n)
		}
		seen[n] = true
		a, ok := reg.Get(n)
		if !ok {
			return nil, nil, fmt.Errorf("core: analysis %q is not registered (registered: %v)", n, reg.Names())
		}
		out = append(out, a)
	}
	return out, reg, nil
}

// deferredYieldInstrs is the replay chunk size for deferred-tier sandboxes:
// small enough that a deferred replay yields to the serving goroutine every
// few hundred microseconds even under expensive instrumentation, large enough
// that the re-entry cost of vm.Machine.Run is noise.
const deferredYieldInstrs = 50_000

// analyzerRun is one analyzer's execution within a pipeline run. exec runs at
// most once (goroutine in the parallel engine, lazily on join in the
// sequential one) and closes done when the finding is in place.
type analyzerRun struct {
	a        analysis.Analyzer
	stepName string
	sb       *analysis.Sandbox
	sbErr    error

	once    sync.Once
	done    chan struct{}
	finding analysis.Finding
	err     error
	dur     time.Duration
}

func (ar *analyzerRun) exec(ctx *analysis.Context, s *Sweeper) {
	ar.once.Do(func() {
		defer close(ar.done)
		start := time.Now()
		if ar.sbErr != nil {
			ar.err = ar.sbErr
		} else {
			ar.finding, ar.err = ar.a.Run(ctx, ar.sb)
			if ar.err == nil && ar.finding == nil && ar.sb.Exhausted() {
				// A starved analyzer must be distinguishable from one that
				// ran its window and found nothing; one that found something
				// before running out keeps its finding as the outcome.
				ar.err = fmt.Errorf("replay budget (%d instructions) exhausted", ar.sb.Budget)
			}
			ar.sb.Release()
		}
		ar.dur = time.Since(start)
		if ar.finding != nil {
			ctx.AddFinding(ar.a.Name(), ar.finding)
		}
		s.latency.Observe(ar.a.Name(), ar.dur)
	})
}

// pipelineRun is one attack's pass through the analysis pipeline. The fast
// tier is joined (per analyzer) on the attack-handling goroutine before the
// matching antibody stage ships; the deferred tier is completed by
// finishDeferredAsync on its own goroutine, after recovery has resumed
// service, and seals the report when it is done.
type pipelineRun struct {
	s        *Sweeper
	ctx      *analysis.Context
	parallel bool
	byName   map[string]*analyzerRun
	fast     []*analyzerRun
	deferred []*analyzerRun
}

// startAnalyses builds a sandbox per configured analyzer (all on the calling
// goroutine — the guest is stopped at the detection point, so the source
// process is quiescent) and launches the fast tier. With
// cfg.ParallelAnalysis the fast analyzers run concurrently, each replaying
// the attack window on its own clone; otherwise each runs inside its join
// call, preserving the paper's one-after-another order. The deferred tier
// never starts here.
func (s *Sweeper) startAnalyses(snap *proc.Snapshot) *pipelineRun {
	run := &pipelineRun{
		s:        s,
		ctx:      analysis.NewContext(),
		parallel: s.cfg.ParallelAnalysis,
		byName:   make(map[string]*analyzerRun, len(s.analyzers)),
	}
	for _, a := range s.analyzers {
		ar := &analyzerRun{
			a:        a,
			stepName: stepNameFor(a.Name()),
			done:     make(chan struct{}),
		}
		ar.sb, ar.sbErr = s.sandbox(snap, s.budgetFor(a.Name()))
		run.byName[a.Name()] = ar
		if a.Cost() == analysis.TierDeferred {
			if ar.sb != nil {
				// Deferred replays run behind the recovered service; chunk them
				// so they cannot monopolize a processor against live requests.
				ar.sb.SetYieldEvery(deferredYieldInstrs)
			}
			run.deferred = append(run.deferred, ar)
		} else {
			run.fast = append(run.fast, ar)
		}
	}
	if run.parallel {
		for _, ar := range run.fast {
			go ar.exec(run.ctx, s)
		}
	}
	return run
}

// wait joins the named analyzer: in the sequential engine it runs the
// analyzer now, in the parallel engine it blocks until the goroutine
// finishes. It returns nil when the analyzer is not configured.
func (r *pipelineRun) wait(name string) *analyzerRun {
	ar := r.byName[name]
	if ar == nil {
		return nil
	}
	if !r.parallel {
		ar.exec(r.ctx, r.s)
	}
	<-ar.done
	return ar
}

// waitFast joins every fast-tier analyzer (custom fast analyzers included),
// so the final antibody never ships before the tier that gates it completes.
func (r *pipelineRun) waitFast() {
	for _, ar := range r.fast {
		if !r.parallel {
			ar.exec(r.ctx, r.s)
		}
		<-ar.done
	}
}

// finishDeferredAsync completes the deferred tier off the client-visible
// path, retiring its report part when every deferred analyzer — and its
// report fields — is in place (the report seals once the attack-handling
// goroutine has also finished recovery). It is called before recovery
// begins, so the deferred replays overlap rollback, re-execution and resumed
// service; nothing on the client-visible path waits for them.
//
// The work runs on the Sweeper's single deferred worker, fed by a bounded
// queue: under an attack storm the deferred runs of distinct attacks queue
// up to cfg.DeferredQueueDepth instead of spawning a goroutine each, and
// once the queue is full the newest attack's deferred analyses are dropped —
// surfaced per analyzer via AttackReport.ErrorFor — rather than piling up
// unbounded work behind the recovered service.
func (r *pipelineRun) finishDeferredAsync(report *AttackReport, t0 time.Time) {
	seal := func() {
		report.mu.Lock()
		report.TotalAnalysisTime = time.Since(t0)
		report.mu.Unlock()
	}
	if len(r.deferred) == 0 {
		seal()
		return
	}
	report.addPart()
	enqueued := r.s.enqueueDeferred(func() {
		for _, ar := range r.deferred {
			ar.exec(r.ctx, r.s)
			report.recordAnalyzer(ar)
		}
		seal()
		report.finishPart()
	})
	if !enqueued {
		for _, ar := range r.deferred {
			if ar.sb != nil {
				ar.sb.Release()
			}
			report.mu.Lock()
			report.errs[ar.a.Name()] = fmt.Sprintf(
				"deferred analysis dropped: queue full (%d attacks backlogged)", r.s.cfg.DeferredQueueDepth)
			report.mu.Unlock()
		}
		seal()
		report.finishPart()
	}
}
