package core

import (
	"bytes"
	"testing"

	"sweeper/internal/analysis/coredump"
	"sweeper/internal/analysis/membug"
	"sweeper/internal/antibody"
	"sweeper/internal/apps"
	"sweeper/internal/exploit"
)

// newSweeperFor builds a Sweeper around the named evaluation application with
// a configuration suitable for tests (deterministic seeds, default policy).
func newSweeperFor(t *testing.T, appName string, mutate func(*Config)) (*Sweeper, *apps.Spec) {
	t.Helper()
	spec, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ASLRSeed = 42
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(spec.Name, spec.Image, spec.Options, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, spec
}

func submitBenign(s *Sweeper, app string, from, n int) int {
	accepted := 0
	for i := from; i < from+n; i++ {
		if s.Submit(exploit.Benign(app, i), "client", false) {
			accepted++
		}
	}
	return accepted
}

func TestEndToEndDefense(t *testing.T) {
	expected := map[string]struct {
		coredumpClass coredump.Class
		membugKind    membug.Kind
		expectMembug  bool
	}{
		"squid":   {coredumpClass: coredump.ClassHeapOverflow, membugKind: membug.KindHeapOverflow, expectMembug: true},
		"apache1": {coredumpClass: coredump.ClassStackSmash, membugKind: membug.KindStackSmash, expectMembug: true},
		"apache2": {coredumpClass: coredump.ClassNullDeref, expectMembug: false},
		"cvs":     {coredumpClass: coredump.ClassDoubleFree, membugKind: membug.KindDoubleFree, expectMembug: true},
	}

	for name, want := range expected {
		t.Run(name, func(t *testing.T) {
			s, spec := newSweeperFor(t, name, nil)
			payload, err := exploit.Exploit(spec)
			if err != nil {
				t.Fatal(err)
			}

			const before, after = 8, 8
			submitBenign(s, name, 0, before)
			if !s.Submit(payload, "worm", true) {
				t.Fatal("exploit was filtered before any antibody existed")
			}
			submitBenign(s, name, before, after)

			res, err := s.ServeAll()
			if err != nil {
				t.Fatalf("ServeAll: %v", err)
			}
			if res.AttacksHandled != 1 {
				t.Fatalf("AttacksHandled = %d, want 1", res.AttacksHandled)
			}
			if s.Halted() {
				t.Fatal("protected server halted")
			}

			// The report's deferred fields are read below; join the
			// asynchronous completion first.
			s.WaitAnalyses()

			// All benign requests must have completed service despite the attack.
			if got := s.Process().ServedRequests(); got < before+after {
				t.Errorf("served %d requests, want at least %d", got, before+after)
			}
			if got := len(s.Process().Outputs()); got < before+after {
				t.Errorf("got %d outputs, want at least %d", got, before+after)
			}

			report := s.Attacks()[0]
			if !report.Recovered {
				t.Error("recovery did not complete")
			}
			if report.CoreDump.Class != want.coredumpClass {
				t.Errorf("core dump class = %v, want %v", report.CoreDump.Class, want.coredumpClass)
			}
			if want.expectMembug {
				if len(report.MemBugFindings) == 0 {
					t.Fatalf("memory-bug detection found nothing")
				}
				if report.MemBugFindings[0].Kind != want.membugKind {
					t.Errorf("membug kind = %v, want %v", report.MemBugFindings[0].Kind, want.membugKind)
				}
			} else if len(report.MemBugFindings) != 0 {
				t.Errorf("unexpected membug findings: %v", report.MemBugFindings)
			}

			if report.CulpritRequestID < 0 {
				t.Error("exploit input was not identified")
			}
			if !bytes.Equal(report.CulpritPayload, payload) {
				t.Errorf("culprit payload mismatch: got %d bytes, want %d", len(report.CulpritPayload), len(payload))
			}
			if !report.SliceConsistent {
				t.Errorf("backward slice does not contain implicated instructions: %v", report.MissingFromSlice)
			}
			if report.FinalAntibody == nil || len(report.FinalAntibody.VSEFs) == 0 {
				t.Fatal("no final antibody / VSEFs generated")
			}
			if len(report.FinalAntibody.Sigs) == 0 {
				t.Error("no input signature generated")
			}
			if report.TimeToFirstVSEF <= 0 || report.TimeToFirstVSEF > report.TotalAnalysisTime {
				t.Errorf("implausible time-to-first-VSEF %v (total %v)", report.TimeToFirstVSEF, report.TotalAnalysisTime)
			}

			// Antibodies were published piecemeal: initial first, final last.
			abs := s.Antibodies()
			if len(abs) < 2 {
				t.Fatalf("expected at least initial+final antibodies, got %d", len(abs))
			}
			if abs[0].Stage != antibody.StageInitial || abs[len(abs)-1].Stage != antibody.StageFinal {
				t.Errorf("antibody stages out of order: first=%s last=%s", abs[0].Stage, abs[len(abs)-1].Stage)
			}
		})
	}
}

func TestRepeatExploitIsFilteredByInputSignature(t *testing.T) {
	s, spec := newSweeperFor(t, "cvs", nil)
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "cvs", 0, 4)
	s.Submit(payload, "worm", true)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	if len(s.Attacks()) != 1 {
		t.Fatalf("expected 1 attack, got %d", len(s.Attacks()))
	}
	// The identical exploit arrives again: the exact-match input signature
	// must drop it at the proxy.
	if s.Submit(payload, "worm", true) {
		t.Fatal("identical exploit was not filtered by the input signature")
	}
	if got := s.Proxy().Stats().Filtered; got != 1 {
		t.Errorf("proxy filtered count = %d, want 1", got)
	}
}

func TestPolymorphicVariantCaughtByVSEF(t *testing.T) {
	for _, name := range []string{"squid", "apache1", "cvs", "apache2"} {
		t.Run(name, func(t *testing.T) {
			s, spec := newSweeperFor(t, name, nil)
			first, err := exploit.ExploitVariant(spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			submitBenign(s, name, 0, 4)
			s.Submit(first, "worm", true)
			if _, err := s.ServeAll(); err != nil {
				t.Fatalf("ServeAll (first attack): %v", err)
			}
			if len(s.Attacks()) != 1 {
				t.Fatalf("expected 1 attack, got %d", len(s.Attacks()))
			}

			// A polymorphic variant is not caught by the exact signature but
			// must be detected (by a VSEF or another lightweight monitor) and
			// must not take the service down.
			variant, err := exploit.ExploitVariant(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(variant, first) {
				t.Fatal("variant is identical to the first exploit; test is vacuous")
			}
			if !s.Submit(variant, "worm", true) {
				t.Fatal("variant was unexpectedly filtered by the exact signature")
			}
			submitBenign(s, name, 100, 4)
			if _, err := s.ServeAll(); err != nil {
				t.Fatalf("ServeAll (variant attack): %v", err)
			}
			if len(s.Attacks()) != 2 {
				t.Fatalf("variant attack was not detected (attacks=%d)", len(s.Attacks()))
			}
			if s.Halted() {
				t.Fatal("server halted after variant attack")
			}
			if !s.Attacks()[1].Recovered {
				t.Error("recovery after variant attack failed")
			}
		})
	}
}

func TestASLRDisabledApache1HijackIsStillStopped(t *testing.T) {
	// Without ASLR the apache1 hijack succeeds and the backdoor exits the
	// server: Sweeper's ServeAll reports the halt (nothing to analyse, the
	// lightweight monitor never fired). This is the ablation that motivates
	// deploying at least one lightweight detector.
	s, spec := newSweeperFor(t, "apache1", func(c *Config) { c.ASLR = false })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "apache1", 0, 2)
	s.Submit(payload, "worm", true)
	res, err := s.ServeAll()
	if err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	if !res.Halted {
		t.Fatal("expected the unprotected hijack to terminate the server")
	}
	if len(s.Attacks()) != 0 {
		t.Fatalf("no attack should have been detected without ASLR, got %d", len(s.Attacks()))
	}
}

func TestShadowStackCatchesHijackWithoutASLR(t *testing.T) {
	s, spec := newSweeperFor(t, "apache1", func(c *Config) {
		c.ASLR = false
		c.ShadowStack = true
	})
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	submitBenign(s, "apache1", 0, 2)
	s.Submit(payload, "worm", true)
	res, err := s.ServeAll()
	if err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	if res.Halted {
		t.Fatal("shadow stack should have stopped the hijack before the backdoor ran")
	}
	if len(s.Attacks()) != 1 {
		t.Fatalf("expected 1 detected attack, got %d", len(s.Attacks()))
	}
	if !s.Attacks()[0].Recovered {
		t.Error("recovery failed")
	}
}
