package core

import (
	"fmt"

	"sweeper/internal/metrics"
	"sweeper/internal/netproxy"
)

// AttachListener puts a real TCP front end in front of the guest: a
// netproxy.Listener accepting framed requests on addr, feeding the guest's
// filtering proxy, and writing each request's response (the concatenated
// guest sends) back on the submitting connection when the request completes.
// A request excised as an attack input during recovery is answered with
// StatusAbsorbed; if the guest halts, outstanding and future requests are
// answered with StatusUnavailable (daemon shutdown answers with
// StatusError).
//
// Attach before Fleet.Start (or any Submit traffic): the completion hooks it
// installs run on the serving goroutine and must not race its launch. The
// listener is closed by Fleet.Stop.
func (g *Guest) AttachListener(addr string) error {
	if g.listener != nil {
		return fmt.Errorf("core: guest %s already has a TCP front end on %s", g.name, g.listener.Addr())
	}
	started := func() bool {
		g.fleet.mu.Lock()
		defer g.fleet.mu.Unlock()
		return g.fleet.started
	}()
	if started {
		return fmt.Errorf("core: guest %s: attach the TCP front end before the fleet starts", g.name)
	}
	submit := func(payload []byte, src string) (int, byte) {
		// A halted guest answers immediately instead of queueing a request
		// no serving loop will ever complete. halted is mirrored under g.mu
		// by the serving loop, so this connection-goroutine read is safe.
		g.mu.Lock()
		halted := g.halted
		g.mu.Unlock()
		if halted {
			return 0, netproxy.StatusUnavailable
		}
		id, accepted := g.s.SubmitTracked(payload, src, false)
		g.fleet.rec.Update(g.name, func(st *metrics.GuestStats) {
			st.FilteredInputs = g.s.Proxy().Stats().Filtered
		})
		if !accepted {
			return id, netproxy.StatusFiltered
		}
		g.mu.Lock()
		g.pending = true
		g.cond.Broadcast()
		g.mu.Unlock()
		return id, netproxy.StatusOK
	}
	ln, err := netproxy.NewListener(addr, submit)
	if err != nil {
		return fmt.Errorf("core: guest %s: %w", g.name, err)
	}
	g.listener = ln
	// Both hooks run on the serving goroutine (inside ServeAll), so the
	// output cursor needs no locking.
	g.s.Process().OnRequestServed = g.respondServed
	g.s.OnAttack = g.respondAttack
	return nil
}

// ListenAddr returns the bound address of the guest's TCP front end ("" when
// none is attached).
func (g *Guest) ListenAddr() string {
	if g.listener == nil {
		return ""
	}
	return g.listener.Addr()
}

// FrontLatency returns the recorder of client-observed sojourn times of the
// guest's TCP front end (nil when none is attached).
func (g *Guest) FrontLatency() *metrics.LatencyRecorder {
	if g.listener == nil {
		return nil
	}
	return g.listener.Latency()
}

// respondServed routes a completed request's output back to its connection.
// The process's output stream is append-only (rollback keeps already-sent
// outputs, replayed sends never re-append), so a cursor over it yields each
// live request's outputs exactly once; stale partial outputs of an excised
// attack request are skipped by the request-ID match. Runs on the serving
// goroutine at the request's live-mode boundary.
func (g *Guest) respondServed(reqID int) {
	outs := g.s.Process().Outputs()
	var resp []byte
	for _, o := range outs[g.outCursor:] {
		if o.RequestID == reqID {
			resp = append(resp, o.Data...)
		}
	}
	g.outCursor = len(outs)
	g.listener.Resolve(reqID, netproxy.StatusOK, resp)
}

// respondAttack answers the excised culprit request's connection: the
// defence absorbed the attack, the attacker gets StatusAbsorbed instead of a
// hung connection. Runs on the serving goroutine as soon as the report is
// recorded, before queued benign requests resume service. A failed recovery
// means the guest is going down: every in-flight waiter is failed with
// StatusUnavailable here, at the point the halt is discovered, not left for
// the serve-loop sweep.
func (g *Guest) respondAttack(report *AttackReport) {
	if report.CulpritRequestID >= 0 {
		g.listener.Resolve(report.CulpritRequestID, netproxy.StatusAbsorbed, nil)
	}
	if !report.Recovered {
		g.listener.ResolveAll(netproxy.StatusUnavailable)
	}
}
