package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"sweeper/internal/analysis/membug"
	"sweeper/internal/analysis/slicing"
	"sweeper/internal/analysis/taint"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// replayAnalysisResult aggregates what the heavyweight rollback-and-replay
// analyses produced for one attack. Both engines (sequential and parallel)
// fill it identically: every analysis re-executes the same attack window from
// the same checkpoint on its own process clone, so the findings do not depend
// on the order — or concurrency — of the replays.
type replayAnalysisResult struct {
	memBugFindings []membug.Finding
	membugPrimary  *membug.Finding
	taintTracker   *taint.Tracker
	taintFindings  []taint.Finding
	taintDetected  bool
	taintCulprit   int

	sliceNodes  int
	sliceInstrs int
	slice       *slicing.Slice

	// Per-analysis wall-clock durations (Table 3's component diagnosis
	// times). In parallel mode they overlap in real time.
	membugStep time.Duration
	taintStep  time.Duration
	sliceStep  time.Duration
}

// runMemBugReplay replays the attack window on a fresh clone under the
// dynamic memory-bug detector.
func (s *Sweeper) runMemBugReplay(snap *proc.Snapshot) ([]membug.Finding, *membug.Finding) {
	clone, err := s.proc.Clone(snap)
	if err != nil {
		return nil, nil
	}
	det := membug.New(clone, true)
	clone.Machine.AttachTool(det)
	clone.Run(s.cfg.ReplayBudget)
	return det.Findings(), det.Primary()
}

// runTaintReplay replays the attack window on a fresh clone under full
// dynamic taint analysis.
func (s *Sweeper) runTaintReplay(snap *proc.Snapshot) (*taint.Tracker, int) {
	clone, err := s.proc.Clone(snap)
	if err != nil {
		return nil, -1
	}
	tr := taint.New(true)
	clone.Machine.AttachTool(tr)
	clone.Run(s.cfg.ReplayBudget)
	culprit := -1
	if id, ok := tr.ResponsibleRequest(); ok {
		culprit = id
	}
	return tr, culprit
}

// runSliceReplay replays the attack window on a fresh clone under the dynamic
// dependence tracker and extracts the backward slice from the failure.
func (s *Sweeper) runSliceReplay(snap *proc.Snapshot) (*slicing.Slice, int) {
	clone, err := s.proc.Clone(snap)
	if err != nil {
		return nil, 0
	}
	sl := slicing.New(slicing.Options{IncludeControlDeps: true})
	clone.Machine.AttachTool(sl)
	clone.Run(s.cfg.ReplayBudget)
	slice, err := sl.BackwardSliceFromLast()
	if err != nil {
		return nil, 0
	}
	return slice, len(slice.InstrSet)
}

// analysisRun is an in-flight execution of the heavyweight analyses for one
// attack. The caller joins each analysis exactly when its result is needed —
// waitMemBug before the refined antibody, waitTaint before exploit-input
// identification, finishSlicing before the consistency cross-check — so
// antibody generation and deployment never wait for work they don't use.
// In the sequential engine nothing runs concurrently: membug runs inside
// startReplayAnalyses and the later analyses run inside their join calls,
// preserving the paper's one-after-another order.
type analysisRun struct {
	res      *replayAnalysisResult
	parallel bool
	runTaint func()
	runSlice func()
	membugWG sync.WaitGroup
	taintWG  sync.WaitGroup
	sliceWG  sync.WaitGroup
	deferred bool // slicing runs inside finishSlicing instead of overlapping
}

// startReplayAnalyses launches the enabled heavyweight analyses, each
// replaying the attack window on its own COW clone of snap. With
// cfg.ParallelAnalysis they run concurrently (the paper's replays are
// independent consumers of one checkpoint); otherwise only membug runs here
// and the rest wait for their join calls.
func (s *Sweeper) startReplayAnalyses(snap *proc.Snapshot) *analysisRun {
	res := &replayAnalysisResult{taintCulprit: -1}
	run := &analysisRun{res: res, parallel: s.cfg.ParallelAnalysis}

	runMemBug := func() {
		start := time.Now()
		res.memBugFindings, res.membugPrimary = s.runMemBugReplay(snap)
		res.membugStep = time.Since(start)
	}
	run.runTaint = func() {
		start := time.Now()
		res.taintTracker, res.taintCulprit = s.runTaintReplay(snap)
		if res.taintTracker != nil {
			res.taintFindings = res.taintTracker.Findings()
			res.taintDetected = res.taintTracker.Detected()
		}
		res.taintStep = time.Since(start)
	}
	run.runSlice = func() {
		start := time.Now()
		res.slice, res.sliceInstrs = s.runSliceReplay(snap)
		if res.slice != nil {
			res.sliceNodes = res.slice.Size()
		}
		res.sliceStep = time.Since(start)
	}

	if run.parallel {
		// Overlap the slicing replay with the antibody-producing analyses
		// only when there is a CPU for each replay; on smaller machines the
		// cross-check would just steal cycles from the antibody path, so it
		// is deferred until after the antibody ships.
		if s.cfg.EnableSlicing {
			if runtime.NumCPU() >= 3 {
				run.sliceWG.Add(1)
				go func() {
					defer run.sliceWG.Done()
					run.runSlice()
				}()
			} else {
				run.deferred = true
			}
		}
		if s.cfg.EnableMemBug {
			run.membugWG.Add(1)
			go func() {
				defer run.membugWG.Done()
				runMemBug()
			}()
		}
		if s.cfg.EnableTaint {
			run.taintWG.Add(1)
			go func() {
				defer run.taintWG.Done()
				run.runTaint()
			}()
		}
	} else {
		if s.cfg.EnableMemBug {
			runMemBug()
		}
		run.deferred = s.cfg.EnableSlicing
	}
	return run
}

// waitMemBug blocks until the memory-bug results are available. The refined
// antibody only needs this analysis, so it is published without waiting for
// taint or slicing.
func (r *analysisRun) waitMemBug() { r.membugWG.Wait() }

// waitTaint blocks until the taint results are available, running the taint
// replay now in the sequential engine.
func (r *analysisRun) waitTaint(enabled bool) {
	if !r.parallel && enabled {
		r.runTaint()
		return
	}
	r.taintWG.Wait()
}

// finishSlicing completes the slicing cross-check: it joins the concurrent
// slicing replay (parallel engine) or runs it now (sequential engine).
func (r *analysisRun) finishSlicing() {
	if r.deferred {
		r.deferred = false
		r.runSlice()
		return
	}
	r.sliceWG.Wait()
}

// isolateInput identifies the exploit request by replaying the requests
// received since the checkpoint one at a time — each on its own clone — and
// seeing which one reproduces the failure (the fallback the paper also uses
// when taint analysis alone cannot name the input). In parallel mode a
// bounded worker pool (one per CPU) replays candidates concurrently and
// stops handing out work past the earliest reproducer found; the first
// reproducing candidate in arrival order is returned either way.
func (s *Sweeper) isolateInput(snap *proc.Snapshot) int {
	candidates := s.proc.Log.RequestsSince(snap.LogLen)
	if len(candidates) == 0 {
		return -1
	}
	if len(candidates) == 1 {
		return candidates[0]
	}
	sort.Ints(candidates)
	tryCandidate := func(i int) bool {
		clone, err := s.proc.Clone(snap)
		if err != nil {
			return false
		}
		var others []int
		for j, id := range candidates {
			if j != i {
				others = append(others, id)
			}
		}
		clone.DropRequests(others...)
		stop := clone.Run(s.cfg.ReplayBudget)
		return stop.Reason == vm.StopFault || stop.Reason == vm.StopViolation
	}
	if !s.cfg.ParallelAnalysis {
		for i := range candidates {
			if tryCandidate(i) {
				return candidates[i]
			}
		}
		return -1
	}
	workers := runtime.NumCPU()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	var (
		mu   sync.Mutex
		next int
		best = -1 // lowest reproducing candidate index found so far
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				if i >= len(candidates) || (best >= 0 && i > best) {
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()
				if tryCandidate(i) {
					mu.Lock()
					if best < 0 || i < best {
						best = i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if best >= 0 {
		return candidates[best]
	}
	return -1
}
