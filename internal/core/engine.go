package core

import (
	"runtime"
	"sort"
	"sync"

	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// isolateInput identifies the exploit request by replaying the requests
// received since the checkpoint one at a time — each on its own (pooled)
// clone — and seeing which one reproduces the failure (the fallback the paper
// also uses when taint analysis alone cannot name the input). In parallel
// mode a bounded worker pool (one per CPU) replays candidates concurrently
// and stops handing out work past the earliest reproducer found; the first
// reproducing candidate in arrival order is returned either way.
func (s *Sweeper) isolateInput(snap *proc.Snapshot) int {
	candidates := s.proc.Log.RequestsSince(snap.LogLen)
	if len(candidates) == 0 {
		return -1
	}
	if len(candidates) == 1 {
		return candidates[0]
	}
	sort.Ints(candidates)
	tryCandidate := func(i int) bool {
		sb, err := s.sandbox(snap, 0)
		if err != nil {
			return false
		}
		defer sb.Release()
		var others []int
		for j, id := range candidates {
			if j != i {
				others = append(others, id)
			}
		}
		sb.Proc.DropRequests(others...)
		stop := sb.Run()
		return stop.Reason == vm.StopFault || stop.Reason == vm.StopViolation
	}
	if !s.cfg.ParallelAnalysis {
		for i := range candidates {
			if tryCandidate(i) {
				return candidates[i]
			}
		}
		return -1
	}
	workers := runtime.NumCPU()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	var (
		mu   sync.Mutex
		next int
		best = -1 // lowest reproducing candidate index found so far
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				if i >= len(candidates) || (best >= 0 && i > best) {
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()
				if tryCandidate(i) {
					mu.Lock()
					if best < 0 || i < best {
						best = i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if best >= 0 {
		return candidates[best]
	}
	return -1
}
