package core

import (
	"fmt"
	"strings"
	"sync"

	"sweeper/internal/antibody"
	"sweeper/internal/checkpoint"
	"sweeper/internal/metrics"
	"sweeper/internal/netproxy"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// Fleet protects many guest server processes at once, one goroutine per
// guest, around a shared antibody store: an antibody generated for one guest
// inoculates every other guest running the same program, without that guest
// ever being attacked — the paper's community-defence flow inside a single
// daemon.
type Fleet struct {
	store *antibody.Store
	rec   *metrics.FleetRecorder

	// dataDir and ckptStore are the durability layer (see durable.go); both
	// are set once at construction. ckptStore is nil for in-memory fleets.
	dataDir   string
	ckptStore *checkpoint.DiskStore

	mu         sync.Mutex
	guests     map[string]*Guest
	order      []*Guest
	started    bool
	durability DurabilityStats
	wg         sync.WaitGroup
}

// Guest is one protected process inside a Fleet. Its Sweeper is owned by the
// guest's serving goroutine while the fleet runs; use the accessors only
// after Drain or Stop.
type Guest struct {
	name    string
	program string
	fleet   *Fleet
	s       *Sweeper

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []*antibody.Antibody
	pending bool
	busy    bool
	stopped bool
	// halted mirrors s.Halted() under mu: the Sweeper field belongs to the
	// serving goroutine, but the TCP front end's submit path (connection
	// goroutines) must see the halt to answer StatusUnavailable.
	halted bool

	// gen is the guest's optional open-loop workload generator (see
	// workload.go). genDone mirrors its completion under mu so Drain and the
	// serving loop agree; genStats is the latest snapshot of its counters.
	gen      *workloadGen
	genDone  bool
	genStats WorkloadStats

	// applied maps an antibody family (owner-attackN) to the currently
	// installed refinement stage, so a refined antibody replaces the initial
	// one instead of stacking probes; appliedRank remembers how refined the
	// installed stage is, so an earlier stage delivered late (store
	// notifications from concurrent publishers may arrive out of order) can
	// never displace a more refined one.
	applied     map[string]*antibody.AppliedAntibody
	appliedRank map[string]int
	adopted     map[string]bool
	// verifyRetries counts re-runs of verifications whose sandbox failed
	// transiently; after the bounded retries the rejection becomes final.
	verifyRetries map[string]int

	// listener is the guest's optional TCP front end (see front.go);
	// outCursor tracks how far into the process's append-only output stream
	// responses have been written back. Both are touched only on the serving
	// goroutine once the fleet has started.
	listener  *netproxy.Listener
	outCursor int

	// lastPersistSeq is the SeqNo of the newest checkpoint written to the
	// fleet's disk store (see maybePersist in durable.go). Touched only on
	// the serving goroutine, and by Stop after the goroutines exit.
	lastPersistSeq int

	serveErr error
}

// NewFleet returns an empty fleet with a fresh shared antibody store. The
// fleet subscribes to its own store: every antibody entering the store — from
// a guest's analysis pipeline or published by an external actor such as the
// federation layer — is fanned out to every guest running that program.
func NewFleet() *Fleet {
	f := &Fleet{
		store:  antibody.NewStore(),
		rec:    metrics.NewFleetRecorder(),
		guests: make(map[string]*Guest),
	}
	f.store.Subscribe(f.distribute)
	return f
}

// Store returns the shared antibody store.
func (f *Fleet) Store() *antibody.Store { return f.store }

// Metrics returns the per-guest counters.
func (f *Fleet) Metrics() *metrics.FleetRecorder { return f.rec }

// AddGuest creates a Sweeper-protected guest named guestName running the
// given program and registers it with the fleet. Antibodies already in the
// shared store for the same program are queued for application, so a
// late-joining guest starts out inoculated. If the fleet is already started
// the guest's serving goroutine launches immediately.
func (f *Fleet) AddGuest(guestName, program string, image *vm.Program, opts proc.Options, cfg Config) (*Guest, error) {
	cfg.InstanceID = guestName
	s, err := New(program, image, opts, cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: guest %s: %w", guestName, err)
	}
	g := &Guest{
		name:          guestName,
		program:       program,
		fleet:         f,
		s:             s,
		applied:       make(map[string]*antibody.AppliedAntibody),
		appliedRank:   make(map[string]int),
		adopted:       make(map[string]bool),
		verifyRetries: make(map[string]int),
	}
	g.cond = sync.NewCond(&g.mu)
	// Publications happen on g's goroutine during attack handling; the fleet
	// forwards them to the store and from there to all other guests.
	s.OnAntibody = func(a *antibody.Antibody) { f.publishFrom(g, a) }

	f.mu.Lock()
	if _, dup := f.guests[guestName]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: duplicate guest name %q", guestName)
	}
	f.guests[guestName] = g
	f.order = append(f.order, g)
	started := f.started
	f.mu.Unlock()

	f.rec.Register(guestName, program)
	// Warm restart: hand the guest its persisted checkpoint before any
	// serving goroutine can exist. The store replay below then queues every
	// known antibody for the program, and the serving loop applies its inbox
	// before serving — so a restarted guest has its filters and probes
	// reinstalled before it takes traffic.
	f.tryWarmRestore(g)
	for _, a := range f.store.ForProgram(program) {
		g.enqueueAntibody(a)
	}
	if started {
		f.wg.Add(1)
		go g.loop()
	} else {
		// No serving goroutine exists yet, so apply the queued (replayed)
		// antibodies synchronously: input-signature filters act at Submit
		// time, and a warm-restarted guest must reject the old exploit at
		// the proxy even when a Submit races Start().
		g.mu.Lock()
		inbox := g.inbox
		g.inbox = nil
		g.mu.Unlock()
		for _, a := range inbox {
			g.adopt(a)
		}
	}
	return g, nil
}

// Guest returns the named guest.
func (f *Fleet) Guest(name string) (*Guest, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.guests[name]
	return g, ok
}

// Guests returns the guests in the order they were added.
func (f *Fleet) Guests() []*Guest {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Guest(nil), f.order...)
}

// Start launches the serving goroutines. It is idempotent.
func (f *Fleet) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.started = true
	for _, g := range f.order {
		f.wg.Add(1)
		go g.loop()
	}
}

// Submit offers a request to the named guest through its filtering proxy and
// wakes the guest's serving goroutine. It reports whether the request was
// accepted (false when an input-signature antibody filtered it out, or the
// guest does not exist).
func (f *Fleet) Submit(guest string, payload []byte, src string, malicious bool) bool {
	g, ok := f.Guest(guest)
	if !ok {
		return false
	}
	accepted := g.s.Submit(payload, src, malicious)
	f.rec.Update(g.name, func(st *metrics.GuestStats) {
		st.FilteredInputs = g.s.Proxy().Stats().Filtered
	})
	if accepted {
		g.mu.Lock()
		g.pending = true
		g.cond.Broadcast()
		g.mu.Unlock()
	}
	return accepted
}

// Drain blocks until every guest is quiescent: no queued requests, no
// pending antibody applications, no running workload generator, no attack
// analysis in flight — including the deferred analysis tier, which completes
// after a guest has already resumed service. It must not race with Submit
// calls.
func (f *Fleet) Drain() {
	for {
		waited := false
		for _, g := range f.Guests() {
			g.mu.Lock()
			for !g.stopped && (g.busy || g.pending || len(g.inbox) > 0 || g.workloadRunnable()) {
				waited = true
				g.cond.Wait()
			}
			g.mu.Unlock()
			g.s.WaitAnalyses()
		}
		if !waited {
			return
		}
	}
}

// workloadRunnable reports whether the guest's workload generator still has
// load to offer. Callers hold g.mu.
func (g *Guest) workloadRunnable() bool {
	return g.gen != nil && !g.genDone && g.serveErr == nil
}

// Stop drains outstanding work, terminates every guest goroutine, waits for
// them to exit and closes any attached TCP front ends (failing their
// still-open connections with StatusError). A durable fleet then persists
// each guest's final checkpoint, flushes and fsyncs the antibody WAL
// (detaching it) and fsyncs the checkpoint store: a clean shutdown never
// loses the last published antibody, and the next daemon on the same data
// directory restarts warm.
func (f *Fleet) Stop() {
	f.Drain()
	for _, g := range f.Guests() {
		g.mu.Lock()
		g.stopped = true
		g.cond.Broadcast()
		g.mu.Unlock()
	}
	f.wg.Wait()
	for _, g := range f.Guests() {
		if g.listener != nil {
			g.listener.Close()
		}
	}
	if f.ckptStore != nil {
		for _, g := range f.Guests() {
			// The goroutines have exited; we own every Sweeper. Capture the
			// quiescent state (a halted guest keeps its last pre-halt
			// persisted checkpoint instead).
			if !g.s.Halted() {
				g.s.ckpt.Checkpoint(g.s.proc)
			}
			g.maybePersist()
		}
	}
	if err := f.store.Close(); err != nil {
		f.durabilityWarning()
	}
	if f.ckptStore != nil {
		if err := f.ckptStore.Sync(); err != nil {
			f.durabilityWarning()
		}
	}
}

// publishFrom records a guest-generated antibody in the shared store; the
// store subscription (distribute) fans it out from there. The origin marks
// the antibody as its own first, so the fan-out does not re-apply what the
// guest's recovery path already installed.
func (f *Fleet) publishFrom(origin *Guest, a *antibody.Antibody) {
	origin.markOwn(a.ID)
	if !f.store.Publish(a) {
		return
	}
	f.rec.Update(origin.name, func(st *metrics.GuestStats) { st.AntibodiesGenerated++ })
}

// distribute is the store-subscription callback: it queues a newly stored
// antibody on every guest running the antibody's program. Guests that have
// already seen the ID (including the generating guest itself) skip it in
// adopt, so double delivery — e.g. the late-joiner replay racing a concurrent
// publish — is harmless.
func (f *Fleet) distribute(a *antibody.Antibody) {
	for _, g := range f.Guests() {
		if g.program != a.Program {
			continue
		}
		g.enqueueAntibody(a)
	}
}

// Name returns the guest's fleet-unique name.
func (g *Guest) Name() string { return g.name }

// Program returns the name of the program the guest runs.
func (g *Guest) Program() string { return g.program }

// Sweeper returns the guest's Sweeper. Only use it while the fleet is
// drained or stopped; the serving goroutine owns it otherwise.
func (g *Guest) Sweeper() *Sweeper { return g.s }

// ServeError returns the last error the serving loop encountered (e.g. a
// failed recovery).
func (g *Guest) ServeError() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.serveErr
}

func (g *Guest) enqueueAntibody(a *antibody.Antibody) {
	g.mu.Lock()
	g.inbox = append(g.inbox, a)
	g.cond.Broadcast()
	g.mu.Unlock()
}

// antibodyFamily groups the piecemeal stages of one attack's antibody
// (initial, refined, final share the "owner-attackN" ID prefix).
func antibodyFamily(id string) string {
	if i := strings.LastIndex(id, "-"); i >= 0 {
		return id[:i]
	}
	return id
}

// stageRank orders the piecemeal refinement stages; an unknown stage ranks
// lowest so it can never displace anything.
func stageRank(s antibody.Stage) int {
	switch s {
	case antibody.StageRefined:
		return 1
	case antibody.StageFinal:
		return 2
	default:
		return 0
	}
}

// installedAntibodies returns every antibody currently protecting the guest:
// the ones it adopted from the store and the ones its own recovery path
// applied. Verification sandboxes re-apply their VSEF probes so exploits only
// those probes can detect still reproduce. Runs on the guest's goroutine.
func (g *Guest) installedAntibodies() []*antibody.Antibody {
	out := make([]*antibody.Antibody, 0, len(g.applied)+len(g.s.applied))
	for _, ap := range g.applied {
		out = append(out, ap.Antibody())
	}
	for _, ap := range g.s.applied {
		out = append(out, ap.Antibody())
	}
	return out
}

// markOwn records an antibody ID as generated by this guest, so the
// store-driven fan-out does not re-adopt (or re-verify) what the guest's own
// recovery path installs. Runs on the guest's goroutine, like adopt: both are
// reached only from the serving loop.
func (g *Guest) markOwn(id string) { g.adopted[id] = true }

// adopt installs a received antibody on the guest: VSEF probes on the
// process, input signatures on the proxy. With cfg.VerifyAdoption set, the
// antibody is first re-verified by replaying its attached exploit input on a
// clone sandbox (see Sweeper.VerifyAntibody) and rejected — counted, never
// installed — if the exploit does not reproduce a violation here; when the
// replay regenerated local analysis findings, the guest synthesises its own
// antibody from them and installs that instead of the sender's (see
// Sweeper.RegenerateAntibody). A more refined stage of the same attack's
// antibody replaces the earlier one — the new stage is applied first and the
// old one removed only on success, so a failed application never leaves the
// guest less protected than before. Runs on the guest's goroutine.
func (g *Guest) adopt(a *antibody.Antibody) {
	if g.adopted[a.ID] {
		return
	}
	g.adopted[a.ID] = true
	family := antibodyFamily(a.ID)
	rank := stageRank(a.Stage)
	prev, replacing := g.applied[family]
	if replacing && rank < g.appliedRank[family] {
		// A more refined stage of this attack's antibody is already
		// installed; an earlier stage delivered late must not strip it (and
		// is not worth a verification sandbox run).
		return
	}
	install := a
	if g.s.cfg.VerifyAdoption {
		const maxVerifyRetries = 3
		dec := g.s.VerifyAntibody(a, g.installedAntibodies()...)
		if dec.Transient && g.verifyRetries[a.ID] < maxVerifyRetries {
			// The sandbox failed, proving nothing about the antibody:
			// forget the ID and requeue it so the serving loop retries the
			// verification. After the bounded retries the rejection below
			// becomes final (and counted) instead of silently dropping an
			// antibody the store still holds.
			g.verifyRetries[a.ID]++
			delete(g.adopted, a.ID)
			g.enqueueAntibody(a)
			return
		}
		g.fleet.rec.Update(g.name, func(st *metrics.GuestStats) {
			if dec.Reproduced {
				st.AntibodiesVerified++
			}
			if !dec.Adoptable {
				st.AntibodiesRejected++
			}
			st.FindingsRegenerated += len(dec.Regenerated)
		})
		if !dec.Adoptable {
			return
		}
		if regen := g.s.RegenerateAntibody(a, dec); regen != nil {
			// The locally synthesised antibody displaces the sender's:
			// nothing of the received probe or filter definitions is
			// installed, only evidence this host re-derived itself.
			install = regen
		}
	}
	ap, err := install.Apply(g.s.Process(), g.s.Proxy())
	if err != nil {
		return
	}
	if replacing {
		prev.Remove()
	}
	g.applied[family] = ap
	g.appliedRank[family] = rank
	g.fleet.rec.Update(g.name, func(st *metrics.GuestStats) {
		st.AntibodiesAdopted++
		if install != a {
			st.AntibodiesRegenerated++
		}
	})
}

// loop is the guest's serving goroutine: apply queued antibodies, serve
// queued requests (handling any attacks inline), publish metrics, repeat.
func (g *Guest) loop() {
	defer g.fleet.wg.Done()
	for {
		g.mu.Lock()
		for !g.stopped && !g.pending && len(g.inbox) == 0 && !g.workloadRunnable() {
			g.cond.Wait()
		}
		if g.stopped {
			g.mu.Unlock()
			return
		}
		inbox := g.inbox
		g.inbox = nil
		serve := g.pending
		g.pending = false
		var gen *workloadGen
		if g.workloadRunnable() {
			gen = g.gen
		}
		g.busy = true
		g.mu.Unlock()

		for _, a := range inbox {
			g.adopt(a)
		}
		if gen != nil {
			if g.s.Halted() {
				// The guest halted outside the workload slice (e.g. an
				// externally submitted request took it down in the serve
				// branch below): retire the generator, or workloadRunnable
				// would keep the loop spinning and Drain waiting forever.
				g.mu.Lock()
				g.genDone = true
				g.mu.Unlock()
			} else {
				done, err := g.runWorkloadSlice(gen)
				g.mu.Lock()
				if done {
					g.genDone = true
				}
				if err != nil {
					g.serveErr = err
				}
				g.mu.Unlock()
			}
		}
		if serve && !g.s.Halted() {
			_, err := g.s.ServeAll()
			if err != nil {
				g.mu.Lock()
				g.serveErr = err
				g.mu.Unlock()
			}
		}
		halted := g.s.Halted()
		if g.listener != nil && halted {
			// The guest is gone; connections waiting on queued requests would
			// otherwise block forever. StatusUnavailable tells the client the
			// guest is down (the daemon may restart it warm), as opposed to
			// the StatusError a daemon shutdown sends.
			g.listener.ResolveAll(netproxy.StatusUnavailable)
		}
		g.maybePersist()
		g.updateMetrics()

		g.mu.Lock()
		g.halted = halted
		g.busy = false
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// updateMetrics publishes the guest's absolute counters to the recorder.
// Runs on the guest's serving goroutine.
func (g *Guest) updateMetrics() {
	recovered := 0
	for _, r := range g.s.Attacks() {
		if r.Recovered {
			recovered++
		}
	}
	served := g.s.Process().ServedRequests()
	g.mu.Lock()
	gen, done := g.gen, g.genDone
	g.mu.Unlock()
	var wl WorkloadStats
	if gen != nil {
		wl = gen.stats(g.s.Process().Machine.NowMicros(), served, done)
		g.mu.Lock()
		g.genStats = wl
		g.mu.Unlock()
	}
	g.fleet.rec.Update(g.name, func(st *metrics.GuestStats) {
		st.RequestsServed = served
		st.AttacksHandled = len(g.s.Attacks())
		st.Recovered = recovered
		st.FilteredInputs = g.s.Proxy().Stats().Filtered
		st.DeferredBacklog = g.s.DeferredBacklog()
		st.DeferredDropped = g.s.DeferredDropped()
		st.Halted = g.s.Halted()
		if gen != nil {
			st.WorkloadOffered = wl.Offered
			st.WorkloadAttacks = wl.Attacks
			st.WorkloadRejected = wl.Rejected
			st.OfferedReqPerSec = wl.OfferedPerSec()
			st.CompletedReqPerSec = wl.CompletedPerSec()
		}
	})
}
