package core_test

import (
	"fmt"
	"testing"

	"sweeper/internal/apps"
	"sweeper/internal/core"
	"sweeper/internal/exploit"
	"sweeper/internal/vm"
)

// TestFleetMemoryGrowsSublinearly proves the scale-mode memory claim: a
// fleet of N same-program guests (each under its own randomised layout)
// installs N full page tables but interns at most one image's worth of new
// backing pages into the process-wide base store, so the store's
// shared-page counter stays >= 90% and per-guest backing memory shrinks as
// the fleet grows. The guests then serve a steady benign load and must keep
// the bulk of their live pages base-backed (copy-on-write kept private
// pages to the handful each guest actually dirtied).
func TestFleetMemoryGrowsSublinearly(t *testing.T) {
	spec, err := apps.ByName("squid")
	if err != nil {
		t.Fatal(err)
	}
	store := vm.DefaultBaseStore()
	before := store.Stats()

	const fleetSize = 12
	fleet := core.NewFleet()
	var guests []*core.Guest
	for i := 0; i < fleetSize; i++ {
		cfg := core.DefaultConfig()
		cfg.ASLRSeed = 0x5eed + int64(i)*7919 // distinct layouts, like distinct hosts
		g, err := fleet.AddGuest(fmt.Sprintf("mem-%d", i), spec.Name, spec.Image, spec.Options, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wcfg := core.WorkloadConfig{
			TargetReqPerSec: 5000,
			Requests:        60,
			Benign:          func(j int) []byte { return exploit.Benign("squid", j) },
			Source:          "loadgen",
		}
		if err := g.SetWorkload(wcfg); err != nil {
			t.Fatal(err)
		}
		guests = append(guests, g)
	}

	after := store.Stats()
	dInstalls := after.Installs - before.Installs
	dInstalled := after.InstalledPages - before.InstalledPages
	dDistinct := after.DistinctPages - before.DistinctPages
	if dInstalls < fleetSize {
		t.Fatalf("fleet of %d performed %d base-image installs", fleetSize, dInstalls)
	}
	perImage := dInstalled / dInstalls
	// Sublinear growth: N installs intern at most ~one image's worth of
	// distinct pages (zero when an earlier test already interned them).
	if dDistinct > perImage {
		t.Errorf("fleet of %d interned %d new backing pages, more than one image (%d)",
			fleetSize, dDistinct, perImage)
	}
	sharedFraction := 1 - float64(dDistinct)/float64(dInstalled)
	if sharedFraction < 0.90 {
		t.Errorf("store shared-page fraction %.3f < 0.90 (distinct +%d, installed +%d)",
			sharedFraction, dDistinct, dInstalled)
	}

	// Steady serving: most live pages must remain base-backed.
	fleet.Start()
	fleet.Drain()
	fleet.Stop()
	aggShared, aggTotal := 0, 0
	for _, g := range guests {
		if err := g.ServeError(); err != nil {
			t.Fatal(err)
		}
		s, tot := g.Sweeper().Process().SharedBasePages()
		if tot == 0 {
			t.Fatalf("%s: no pages mapped", g.Name())
		}
		aggShared += s
		aggTotal += tot
	}
	liveFraction := float64(aggShared) / float64(aggTotal)
	if liveFraction < 0.75 {
		t.Errorf("steady fleet keeps %.3f of live pages base-backed (%d/%d), want >= 0.75",
			liveFraction, aggShared, aggTotal)
	}
	t.Logf("fleet=%d: store shared %.3f (distinct +%d / installed +%d), live base-backed %.3f (%d/%d)",
		fleetSize, sharedFraction, dDistinct, dInstalled, liveFraction, aggShared, aggTotal)
}
