package core

import (
	"fmt"

	"sweeper/internal/analysis/taint"
	"sweeper/internal/antibody"
	"sweeper/internal/monitor"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// VerifyDecision is the outcome of verifying a received antibody before
// adoption.
type VerifyDecision struct {
	// Adoptable says the antibody may be installed.
	Adoptable bool
	// Reproduced says an exploit replay ran and reproduced a detectable
	// violation (VSEF-only antibodies are adoptable without one).
	Reproduced bool
	// Transient says the verdict proves nothing about the antibody: the
	// sandbox could not be built or did not quiesce. The caller should retry
	// rather than record the antibody as rejected-forever.
	Transient bool
	// Reason explains the decision.
	Reason string
}

// VerifyAntibody decides whether an antibody received from an untrusted
// publisher may be adopted, the paper's verify-before-adopt step:
//
//   - A VSEF-only antibody (no input signatures, no exploit input) is
//     adoptable without verification — by their nature VSEFs cannot be
//     harmful, an incorrect one only adds unnecessary checking.
//   - Input signatures are different: a malicious signature silently censors
//     whatever it matches. Signatures are therefore only adoptable alongside
//     an exploit input that (a) every signature matches and (b) demonstrably
//     reproduces a violation when replayed against this guest in a sandbox.
//   - An antibody whose exploit input does not reproduce any violation —
//     corrupted in transit, generated for a different program, or a benign
//     payload masquerading as an exploit to poison the filters — is rejected.
//
// The optional installed antibodies are re-applied (VSEF probes only, no
// input filters) to the sandbox, so an exploit that only the host's existing
// filters can detect — e.g. a polymorphic variant the generating host caught
// via an earlier antibody's probes — still reproduces.
func (s *Sweeper) VerifyAntibody(a *antibody.Antibody, installed ...*antibody.Antibody) VerifyDecision {
	if len(a.ExploitInput) == 0 {
		if len(a.Sigs) > 0 {
			return VerifyDecision{Reason: "input signatures without an exploit input to verify them"}
		}
		return VerifyDecision{Adoptable: true, Reason: "VSEF-only antibody; harmless by construction"}
	}
	for _, sig := range a.Sigs {
		if !sig.Match(a.ExploitInput) {
			return VerifyDecision{Reason: fmt.Sprintf("signature %s does not match the attached exploit input", sig.Name())}
		}
	}
	reproduced, transient, reason := s.ReplayExploit(a.ExploitInput, installed)
	return VerifyDecision{
		Adoptable:  reproduced,
		Reproduced: reproduced,
		Transient:  transient,
		Reason:     reason,
	}
}

// replayBudgetSlices bounds how many ReplayBudget-sized slices each sandbox
// run may take before the verification gives up.
const replayBudgetSlices = 8

// runToQuiescence drives a sandbox clone until it blocks for input, stops for
// another reason, or exhausts the slice allowance.
func (s *Sweeper) runToQuiescence(clone *proc.Process) *vm.StopInfo {
	var stop *vm.StopInfo
	for i := 0; i < replayBudgetSlices; i++ {
		stop = clone.Run(s.cfg.ReplayBudget)
		if stop.Reason != vm.StopInstrBudget {
			break
		}
	}
	return stop
}

// ReplayExploit replays an exploit candidate in a sandbox and reports whether
// it reproduces a detectable violation. The sandbox is a copy-on-write clone
// of the latest checkpoint: the clone first drains its logged replay window
// to reach a quiescent, up-to-date state, then is switched live and fed the
// candidate through its own fresh (filterless) proxy. The live process, its
// proxy and its clock are never touched. transient=true means the sandbox
// itself failed — the verdict proves nothing about the payload.
func (s *Sweeper) ReplayExploit(payload []byte, installed []*antibody.Antibody) (reproduced, transient bool, reason string) {
	snap := s.ckpt.Latest()
	if snap == nil {
		return false, true, "no checkpoint to build a verification sandbox from"
	}
	clone, err := s.proc.Clone(snap)
	if err != nil {
		return false, true, fmt.Sprintf("verification sandbox: %v", err)
	}
	// The sandbox must detect everything the live guest would: clones carry
	// no tools or probes, so re-attach the configured lightweight monitors
	// (the layout, and with it ASLR, is inherited) and re-apply the VSEF
	// probes of the already-installed antibodies. Without these, an exploit
	// the live guest catches via e.g. the shadow stack or an earlier
	// antibody's probes would fail to "reproduce" on a bare clone and a
	// genuine antibody would be rejected. Input filters are deliberately NOT
	// installed on the sandbox proxy: they would swallow the candidate before
	// it could prove anything.
	if s.cfg.ShadowStack {
		clone.Machine.AttachTool(monitor.NewShadowStack())
	}
	if s.cfg.AlwaysOnTaint {
		clone.Machine.AttachTool(taint.New(true))
	}
	for _, inst := range installed {
		if inst == nil {
			continue
		}
		if _, err := inst.Apply(clone, nil); err != nil {
			return false, true, fmt.Sprintf("verification sandbox: re-applying %s: %v", inst.ID, err)
		}
	}
	if stop := s.runToQuiescence(clone); stop.Reason != vm.StopWaitInput {
		return false, true, fmt.Sprintf("verification sandbox did not quiesce: %v", stop.Reason)
	}
	clone.SetMode(proc.ModeLive, false)
	clone.Proxy().Submit(payload, "verifier", true)
	stop := s.runToQuiescence(clone)
	if det := monitor.Classify(stop); det.Suspicious {
		return true, false, "exploit replay reproduced: " + det.Reason
	}
	// A payload that neither quiesces nor violates (e.g. runs the budget out
	// or halts the sandbox) is deterministic: rejecting it is final.
	return false, false, fmt.Sprintf("exploit replay did not reproduce a violation (stop: %v)", stop.Reason)
}
