package core

import (
	"fmt"

	"sweeper/internal/analysis"
	"sweeper/internal/analysis/membug"
	"sweeper/internal/analysis/taint"
	"sweeper/internal/antibody"
	"sweeper/internal/monitor"
	"sweeper/internal/proc"
	"sweeper/internal/vm"
)

// VerifyDecision is the outcome of verifying a received antibody before
// adoption.
type VerifyDecision struct {
	// Adoptable says the antibody may be installed.
	Adoptable bool
	// Reproduced says an exploit replay ran and reproduced a detectable
	// violation (VSEF-only antibodies are adoptable without one).
	Reproduced bool
	// Transient says the verdict proves nothing about the antibody: the
	// sandbox could not be built or did not quiesce. The caller should retry
	// rather than record the antibody as rejected-forever.
	Transient bool
	// Reason explains the decision.
	Reason string
	// Regenerated holds, per analyzer, the findings the fast analysis tier
	// re-derived by replaying the exploit inside the verification sandbox —
	// the paper's strongest trust model: the receiving host does not merely
	// observe "a violation", it regenerates the analysis evidence (and could
	// regenerate the antibody) locally instead of trusting the sender's.
	// Present only when the exploit reproduced.
	Regenerated map[string]analysis.Finding
}

// VerifyAntibody decides whether an antibody received from an untrusted
// publisher may be adopted, the paper's verify-before-adopt step:
//
//   - A VSEF-only antibody (no input signatures, no exploit input) is
//     adoptable without verification — by their nature VSEFs cannot be
//     harmful, an incorrect one only adds unnecessary checking.
//   - Input signatures are different: a malicious signature silently censors
//     whatever it matches. Signatures are therefore only adoptable alongside
//     an exploit input that (a) every signature matches and (b) demonstrably
//     reproduces a violation when replayed against this guest in a sandbox.
//   - An antibody whose exploit input does not reproduce any violation —
//     corrupted in transit, generated for a different program, or a benign
//     payload masquerading as an exploit to poison the filters — is rejected.
//
// The optional installed antibodies are re-applied (VSEF probes only, no
// input filters) to the sandbox, so an exploit that only the host's existing
// filters can detect — e.g. a polymorphic variant the generating host caught
// via an earlier antibody's probes — still reproduces.
func (s *Sweeper) VerifyAntibody(a *antibody.Antibody, installed ...*antibody.Antibody) VerifyDecision {
	if len(a.ExploitInput) == 0 {
		if len(a.Sigs) > 0 {
			return VerifyDecision{Reason: "input signatures without an exploit input to verify them"}
		}
		return VerifyDecision{Adoptable: true, Reason: "VSEF-only antibody; harmless by construction"}
	}
	for _, sig := range a.Sigs {
		if !sig.Match(a.ExploitInput) {
			return VerifyDecision{Reason: fmt.Sprintf("signature %s does not match the attached exploit input", sig.Name())}
		}
	}
	rep := s.ReplayExploit(a.ExploitInput, installed)
	return VerifyDecision{
		Adoptable:   rep.Reproduced,
		Reproduced:  rep.Reproduced,
		Transient:   rep.Transient,
		Reason:      rep.Reason,
		Regenerated: rep.Regenerated,
	}
}

// ExploitReplay is the outcome of replaying an exploit candidate in a
// verification sandbox.
type ExploitReplay struct {
	// Reproduced says the replay reproduced a detectable violation.
	Reproduced bool
	// Transient says the sandbox itself failed — the verdict proves nothing
	// about the payload.
	Transient bool
	// Reason explains the outcome.
	Reason string
	// Regenerated holds the fast-tier findings re-derived from the
	// reproduction (see VerifyDecision.Regenerated).
	Regenerated map[string]analysis.Finding
}

// replayBudgetSlices bounds how many ReplayBudget-sized slices each sandbox
// run may take before the verification gives up.
const replayBudgetSlices = 8

// runToQuiescence drives a sandbox clone until it blocks for input, stops for
// another reason, or exhausts the slice allowance.
func (s *Sweeper) runToQuiescence(clone *proc.Process) *vm.StopInfo {
	var stop *vm.StopInfo
	for i := 0; i < replayBudgetSlices; i++ {
		stop = clone.Run(s.cfg.ReplayBudget)
		if stop.Reason != vm.StopInstrBudget {
			break
		}
	}
	return stop
}

// ReplayExploit replays an exploit candidate in a sandbox and reports whether
// it reproduces a detectable violation. The sandbox is a (pooled) copy-on-
// write clone of the latest checkpoint: the clone first drains its logged
// replay window to reach a quiescent, up-to-date state, then is switched live
// and fed the candidate through its own fresh (filterless) proxy. The live
// process, its proxy and its clock are never touched.
//
// When the violation reproduces, the fast analysis tier is re-run against the
// reproduction (each analyzer on its own sub-clone of the quiescent sandbox
// state), regenerating memory-bug and taint findings locally; the result is
// returned in ExploitReplay.Regenerated.
func (s *Sweeper) ReplayExploit(payload []byte, installed []*antibody.Antibody) ExploitReplay {
	snap := s.ckpt.Latest()
	if snap == nil {
		return ExploitReplay{Transient: true, Reason: "no checkpoint to build a verification sandbox from"}
	}
	sb, err := s.sandbox(snap, 0)
	if err != nil {
		return ExploitReplay{Transient: true, Reason: fmt.Sprintf("verification sandbox: %v", err)}
	}
	defer sb.Release()
	clone := sb.Proc
	// The sandbox must detect everything the live guest would: clones carry
	// no tools or probes, so re-attach the configured lightweight monitors
	// (the layout, and with it ASLR, is inherited) and re-apply the VSEF
	// probes of the already-installed antibodies. Without these, an exploit
	// the live guest catches via e.g. the shadow stack or an earlier
	// antibody's probes would fail to "reproduce" on a bare clone and a
	// genuine antibody would be rejected. Input filters are deliberately NOT
	// installed on the sandbox proxy: they would swallow the candidate before
	// it could prove anything.
	if s.cfg.ShadowStack {
		clone.Machine.AttachTool(monitor.NewShadowStack())
	}
	if s.cfg.AlwaysOnTaint {
		clone.Machine.AttachTool(taint.New(true))
	}
	for _, inst := range installed {
		if inst == nil {
			continue
		}
		if _, err := inst.Apply(clone, nil); err != nil {
			return ExploitReplay{Transient: true, Reason: fmt.Sprintf("verification sandbox: re-applying %s: %v", inst.ID, err)}
		}
	}
	if stop := s.runToQuiescence(clone); stop.Reason != vm.StopWaitInput {
		return ExploitReplay{Transient: true, Reason: fmt.Sprintf("verification sandbox did not quiesce: %v", stop.Reason)}
	}
	// Capture the quiescent state: the regeneration sub-clones below replay
	// from here, with the candidate as the only logged request after it. The
	// snapshot (a page-map copy plus COW arming) is only worth taking when
	// regeneration is enabled and a fast-tier analyzer exists to consume it.
	var base *proc.Snapshot
	if s.cfg.RegenerateOnVerify && s.hasFastAnalyzers() {
		base = clone.Snapshot(0)
	}
	clone.SetMode(proc.ModeLive, false)
	clone.Proxy().Submit(payload, "verifier", true)
	stop := s.runToQuiescence(clone)
	if det := monitor.Classify(stop); det.Suspicious {
		return ExploitReplay{
			Reproduced:  true,
			Reason:      "exploit replay reproduced: " + det.Reason,
			Regenerated: s.regenerateFindings(clone, base),
		}
	}
	// A payload that neither quiesces nor violates (e.g. runs the budget out
	// or halts the sandbox) is deterministic: rejecting it is final.
	return ExploitReplay{Reason: fmt.Sprintf("exploit replay did not reproduce a violation (stop: %v)", stop.Reason)}
}

// RegenerateAntibody synthesises a local replacement for a verified received
// antibody from the evidence this host re-derived itself: VSEF probes built
// from the regenerated memory-bug and taint findings, plus an exact input
// signature over the attached exploit input (which this host just replayed
// and watched reproduce — it is the one part of the sender's antibody that
// was independently validated). Installing the regenerated antibody removes
// the last trust in the sender's contents: nothing of the received probe or
// filter definitions survives, only the exploit they were claimed to stop.
//
// Returns nil when the regenerated findings cannot produce any VSEF — the
// caller falls back to the verified sender antibody.
func (s *Sweeper) RegenerateAntibody(a *antibody.Antibody, dec VerifyDecision) *antibody.Antibody {
	if !dec.Reproduced || len(dec.Regenerated) == 0 || len(a.ExploitInput) == 0 {
		return nil
	}
	// "+regen" keeps antibodyFamily(ID) — everything up to the last '-' —
	// identical to the sender's, so stage replacement keeps working across
	// regenerated and original antibodies of the same attack.
	id := a.ID + "+regen"
	var vsefs []*antibody.VSEF
	if res, ok := dec.Regenerated[membug.AnalyzerName].(*membug.Result); ok && res.Primary != nil {
		if v := antibody.FromMemBug(id+"-vsef", a.Program, res.Primary); v != nil {
			vsefs = append(vsefs, v)
		}
	}
	if res, ok := dec.Regenerated[taint.AnalyzerName].(*taint.Result); ok && res.Tracker != nil {
		if v := antibody.FromTaint(id+"-taint-vsef", a.Program, res.Tracker); v != nil {
			vsefs = append(vsefs, v)
		}
	}
	if len(vsefs) == 0 {
		return nil
	}
	return &antibody.Antibody{
		ID:           id,
		Program:      a.Program,
		Stage:        a.Stage,
		VSEFs:        vsefs,
		Sigs:         []*antibody.Signature{antibody.ExactSignature(id+"-sig", a.ExploitInput)},
		ExploitInput: a.ExploitInput,
		CreatedAtMs:  s.proc.Machine.NowMillis(),
		Notes:        []string{"regenerated locally from verified exploit replay of " + a.ID},
	}
}

// hasFastAnalyzers reports whether any configured analyzer runs in the fast
// tier.
func (s *Sweeper) hasFastAnalyzers() bool {
	for _, a := range s.analyzers {
		if a.Cost() == analysis.TierFast {
			return true
		}
	}
	return false
}

// regenerateFindings re-runs the configured fast-tier analyzers against the
// reproduced exploit: each on its own clone of the verification sandbox's
// quiescent state, replaying only the candidate request. Sub-clones are built
// directly from the sandbox (not the pool — their log view belongs to the
// sandbox, not the live process). Failures are tolerated: regeneration is
// corroborating evidence, not a gate.
func (s *Sweeper) regenerateFindings(clone *proc.Process, base *proc.Snapshot) map[string]analysis.Finding {
	out := make(map[string]analysis.Finding)
	if base == nil {
		return out
	}
	ctx := analysis.NewContext()
	for _, a := range s.analyzers {
		if a.Cost() != analysis.TierFast {
			continue
		}
		sub, err := clone.Clone(base)
		if err != nil {
			continue
		}
		f, err := a.Run(ctx, analysis.NewSandbox(sub, s.cfg.ReplayBudget, nil))
		if err != nil || f == nil {
			continue
		}
		out[a.Name()] = f
	}
	return out
}
