package core

import (
	"crypto/sha256"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"sweeper/internal/apps"
	"sweeper/internal/exploit"
)

// newDurableFleetWith is newFleetWith rooted at a data directory: same app,
// same deterministic per-guest ASLR seeds, so a second generation on the
// same directory reconstructs identical layouts and can restart warm.
func newDurableFleetWith(t *testing.T, dir, appName string, guests int) (*Fleet, *apps.Spec) {
	t.Helper()
	spec, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleetWithOptions(FleetOptions{DataDir: dir})
	for i := 0; i < guests; i++ {
		cfg := DefaultConfig()
		cfg.ASLRSeed = 42 + int64(i)*7919
		if _, err := f.AddGuest(fmt.Sprintf("%s-%d", appName, i), spec.Name, spec.Image, spec.Options, cfg); err != nil {
			t.Fatal(err)
		}
	}
	return f, spec
}

// TestDurableFleetWarmRestartFiltersBeforeServing is the restart half of the
// community-defence flow: generation 1 survives an attack and stops cleanly;
// generation 2 on the same data directory must come back with every antibody
// in its store, every guest warm-restored from its persisted checkpoint, and
// the exploit filtered at the proxy before any guest re-handles the attack.
func TestDurableFleetWarmRestartFiltersBeforeServing(t *testing.T) {
	dir := t.TempDir()
	const guests = 2

	f1, spec := newDurableFleetWith(t, dir, "cvs", guests)
	f1.Start()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < guests; i++ {
		name := fmt.Sprintf("cvs-%d", i)
		for r := 0; r < 4; r++ {
			f1.Submit(name, exploit.Benign("cvs", r), "client", false)
		}
	}
	if !f1.Submit("cvs-0", payload, "worm", true) {
		t.Fatal("exploit filtered before any antibody existed")
	}
	f1.Drain()
	stored := len(f1.Store().All())
	if stored == 0 {
		t.Fatal("no antibodies reached the shared store")
	}
	served1, _ := f1.Metrics().Guest("cvs-1")
	f1.Stop()

	f2, _ := newDurableFleetWith(t, dir, "cvs", guests)
	if d := f2.Durability(); d.Warnings != 0 || d.ColdFallbacks != 0 {
		t.Fatalf("restart durability = %+v, want no warnings or cold fallbacks", d)
	}
	if got := len(f2.Store().All()); got != stored {
		t.Fatalf("restarted store holds %d antibodies, want %d", got, stored)
	}
	if d := f2.Durability(); d.WarmRestarts != guests {
		t.Fatalf("warm restarts = %d, want %d", d.WarmRestarts, guests)
	}
	for i := 0; i < guests; i++ {
		name := fmt.Sprintf("cvs-%d", i)
		g, _ := f2.Guest(name)
		// Warm restore means the virtual clock continues from the persisted
		// state, not from a cold image at time zero.
		if g.Sweeper().Process().Machine.NowMicros() == 0 {
			t.Errorf("guest %s restarted with a cold clock; warm restore did not take", name)
		}
		st, _ := f2.Metrics().Guest(name)
		if !st.WarmRestarted {
			t.Errorf("guest %s not counted as warm-restarted", name)
		}
	}
	// Filters are installed at construction, not lazily on the serving loop:
	// the old exploit must bounce off the proxy even before Start().
	if f2.Submit("cvs-0", payload, "worm", true) {
		t.Error("restarted guest accepted the exploit before Start(); filters were not installed at construction")
	}
	f2.Start()
	f2.Drain() // the serving loops apply any remaining replayed inbox here
	for i := 0; i < guests; i++ {
		name := fmt.Sprintf("cvs-%d", i)
		if f2.Submit(name, payload, "worm", true) {
			t.Errorf("restarted guest %s accepted the exploit; filters were not reinstalled before serving", name)
		}
		g, _ := f2.Guest(name)
		if got := len(g.Sweeper().Attacks()); got != 0 {
			t.Errorf("restarted guest %s re-handled %d attacks, want 0 (inoculated from disk)", name, got)
		}
	}
	// The restored guest remembers its pre-restart service history.
	st1, _ := f2.Metrics().Guest("cvs-1")
	if got := st1.RequestsServed; got != 0 {
		t.Logf("cvs-1 served %d requests after restart (pre-restart %d)", got, served1.RequestsServed)
	}
	f2.Stop()
}

// TestDurableFleetDegradesWithoutDataDir: an unusable data directory must
// never take the fleet down — it degrades to in-memory with counted
// warnings and still defends its guests.
func TestDurableFleetDegradesWithoutDataDir(t *testing.T) {
	// A file where the data directory should be makes both stores unopenable.
	dir := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, spec := newDurableFleetWith(t, dir, "cvs", 1)
	if d := f.Durability(); d.Warnings != 2 {
		t.Fatalf("durability warnings = %d, want 2 (antibody store + checkpoint store)", d.Warnings)
	}
	if f.Store().Durable() {
		t.Error("store claims durability with an unopenable data directory")
	}
	f.Start()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Submit("cvs-0", payload, "worm", true)
	f.Drain()
	if len(f.Store().All()) == 0 {
		t.Error("degraded fleet generated no antibodies; it must keep defending")
	}
	f.Stop()
}

// hashTree maps every file under root (relative path) to its content hash.
func hashTree(t *testing.T, root string) map[string][32]byte {
	t.Helper()
	out := make(map[string][32]byte)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out[rel] = sha256.Sum256(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDurableStoreSurvivesStopStartByteIdentical: once a generation has
// stopped cleanly, an idle stop/start cycle (open, serve nothing new, stop)
// must leave every byte of the data directory exactly as it found it — no
// chain growth, no rewritten pages, no drifting manifests.
func TestDurableStoreSurvivesStopStartByteIdentical(t *testing.T) {
	dir := t.TempDir()

	f1, spec := newDurableFleetWith(t, dir, "cvs", 2)
	f1.Start()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		f1.Submit("cvs-0", exploit.Benign("cvs", r), "client", false)
	}
	f1.Submit("cvs-0", payload, "worm", true)
	f1.Drain()
	stored := len(f1.Store().All())
	if stored == 0 {
		t.Fatal("no antibodies reached the shared store")
	}
	f1.Stop()

	cycle := func() map[string][32]byte {
		f, _ := newDurableFleetWith(t, dir, "cvs", 2)
		if got := len(f.Store().All()); got != stored {
			t.Fatalf("store holds %d antibodies after restart, want %d", got, stored)
		}
		f.Start()
		f.Drain()
		f.Stop()
		if d := f.Durability(); d.Warnings != 0 {
			t.Fatalf("idle cycle produced %d durability warnings", d.Warnings)
		}
		return hashTree(t, dir)
	}

	first := cycle()
	second := cycle()
	if len(first) != len(second) {
		t.Fatalf("file count changed across idle cycles: %d -> %d", len(first), len(second))
	}
	for rel, h := range first {
		h2, ok := second[rel]
		if !ok {
			t.Errorf("file %s vanished across an idle stop/start cycle", rel)
			continue
		}
		if h != h2 {
			t.Errorf("file %s changed across an idle stop/start cycle", rel)
		}
	}
}
