package core

import (
	"fmt"
	"sync"
	"testing"

	"sweeper/internal/exploit"
	"sweeper/internal/netproxy"
)

// TestFrontEndServesOverTCP drives a protected guest through its real TCP
// front end: framed benign requests over a loopback socket must come back
// StatusOK carrying the guest's actual output, with every response timed
// into the listener's latency recorder.
func TestFrontEndServesOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	f, _ := newFleetWith(t, "cvs", 1)
	g, _ := f.Guest("cvs-0")
	if err := g.AttachListener("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	c, err := netproxy.Dial(g.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const requests = 16
	for i := 0; i < requests; i++ {
		status, resp, err := c.Do(exploit.Benign("cvs", i))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if status != netproxy.StatusOK {
			t.Fatalf("request %d: status %s, want ok", i, netproxy.StatusName(status))
		}
		if len(resp) == 0 {
			t.Fatalf("request %d: empty response payload", i)
		}
	}
	if got := g.FrontLatency().Count(); got != requests {
		t.Errorf("latency recorder saw %d responses, want %d", got, requests)
	}
	if p50 := g.FrontLatency().Quantile(0.5); p50 <= 0 {
		t.Errorf("p50 sojourn = %v, want > 0", p50)
	}
}

// TestFrontEndAbsorbsAttackOverTCP sends a real exploit through the socket:
// the attacking connection must get StatusAbsorbed (its request was excised
// during recovery, the service survived), benign traffic afterwards must be
// served normally, and a repeat of the same exploit must bounce off the
// generated input-signature antibody as StatusFiltered.
func TestFrontEndAbsorbsAttackOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	f, spec := newFleetWith(t, "cvs", 1)
	g, _ := f.Guest("cvs-0")
	if err := g.AttachListener("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}

	benign := func(tag string, c *netproxy.Client, n, seq int) {
		t.Helper()
		for i := 0; i < n; i++ {
			status, resp, err := c.Do(exploit.Benign("cvs", seq+i))
			if err != nil {
				t.Fatalf("%s request %d: %v", tag, i, err)
			}
			if status != netproxy.StatusOK || len(resp) == 0 {
				t.Fatalf("%s request %d: status %s, %d payload bytes", tag, i, netproxy.StatusName(status), len(resp))
			}
		}
	}
	c, err := netproxy.Dial(g.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	benign("before", c, 8, 0)

	attacker, err := netproxy.Dial(g.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	status, _, err := attacker.Do(payload)
	if err != nil {
		t.Fatalf("exploit request: %v", err)
	}
	if status != netproxy.StatusAbsorbed {
		t.Fatalf("exploit got status %s, want absorbed", netproxy.StatusName(status))
	}

	benign("after", c, 8, 8)

	// The same worm again: the input-signature antibody generated during
	// recovery must now drop it at the proxy.
	status, _, err = attacker.Do(payload)
	if err != nil {
		t.Fatalf("repeat exploit request: %v", err)
	}
	if status != netproxy.StatusFiltered {
		t.Errorf("repeat exploit got status %s, want filtered", netproxy.StatusName(status))
	}

	f.Drain()
	g0 := g.Sweeper()
	if got := len(g0.Attacks()); got != 1 {
		t.Fatalf("attacks handled = %d, want 1", got)
	}
	if !g0.Attacks()[0].Recovered {
		t.Error("the attack was not recovered from")
	}
	if g0.Halted() {
		t.Error("guest halted")
	}
	// 16 benign ok + 1 absorbed + 1 filtered responses were all timed.
	if got := g.FrontLatency().Count(); got != 18 {
		t.Errorf("latency recorder saw %d responses, want 18", got)
	}
}

// TestFrontEndConcurrentClientsDuringAttack hammers the front end from many
// connections while one of them fires the exploit mid-storm: every benign
// request must be answered ok, the exploit absorbed or filtered, and no
// connection left hanging.
func TestFrontEndConcurrentClientsDuringAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test: run without -short")
	}
	f, spec := newFleetWith(t, "squid", 1)
	g, _ := f.Guest("squid-0")
	if err := g.AttachListener("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 6, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := netproxy.Dial(g.ListenAddr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				status, _, err := c.Do(exploit.Benign("squid", i*perClient+j))
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", i, j, err)
					return
				}
				if status != netproxy.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %s", i, j, netproxy.StatusName(status))
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := netproxy.Dial(g.ListenAddr())
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		status, _, err := c.Do(payload)
		if err != nil {
			errs <- fmt.Errorf("exploit request: %w", err)
			return
		}
		if status != netproxy.StatusAbsorbed && status != netproxy.StatusFiltered {
			errs <- fmt.Errorf("exploit got status %s, want absorbed or filtered", netproxy.StatusName(status))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	f.Drain()
	if g.Sweeper().Halted() {
		t.Error("guest halted under concurrent socket load")
	}
	if got := g.FrontLatency().Count(); got != clients*perClient+1 {
		t.Errorf("latency recorder saw %d responses, want %d", got, clients*perClient+1)
	}
}
