package core

import (
	"bytes"
	"testing"

	"sweeper/internal/exploit"
	"sweeper/internal/vm"
)

// runRecoveryCycle drives one full attack-and-recovery cycle (benign traffic,
// exploit, more benign traffic) with the requested recovery path and returns
// the quiesced Sweeper for state inspection.
func runRecoveryCycle(t *testing.T, appName string, pipelined bool) *Sweeper {
	t.Helper()
	s, spec := newSweeperFor(t, appName, func(c *Config) { c.PipelinedRecovery = pipelined })
	payload, err := exploit.Exploit(spec)
	if err != nil {
		t.Fatal(err)
	}
	const before, after = 8, 8
	submitBenign(s, appName, 0, before)
	if !s.Submit(payload, "worm", true) {
		t.Fatal("exploit was filtered before any antibody existed")
	}
	submitBenign(s, appName, before, after)
	if _, err := s.ServeAll(); err != nil {
		t.Fatalf("ServeAll: %v", err)
	}
	s.WaitAnalyses()
	if len(s.Attacks()) != 1 {
		t.Fatalf("handled %d attacks, want 1", len(s.Attacks()))
	}
	if !s.Attacks()[0].Recovered {
		t.Fatal("recovery did not complete")
	}
	return s
}

// guestPages dumps every mapped guest page for byte-level comparison.
func guestPages(t *testing.T, m *vm.Machine) map[uint32][]byte {
	t.Helper()
	out := make(map[uint32][]byte)
	for _, base := range m.Mem.MappedPageBases() {
		data, ok := m.Mem.ReadBytes(base, vm.PageSize)
		if !ok {
			t.Fatalf("mapped page %#x unreadable", base)
		}
		out[base] = data
	}
	return out
}

// TestPipelinedRecoveryMatchesSerialState proves the pipelined recovery path
// — the benign prefix replaying on a clone concurrently with the analyses,
// then adopted by the live process — leaves the guest in exactly the state
// the serial rollback-and-replay produces: byte-identical memory, identical
// registers and identical client-visible outputs. Virtual time is exempt by
// design (shrinking it is the point of the pipeline). Run under the race
// detector this also exercises the prefix clone racing the analysis clones
// over the shared snapshot and event log.
func TestPipelinedRecoveryMatchesSerialState(t *testing.T) {
	for _, appName := range []string{"apache1", "apache2", "cvs", "squid"} {
		t.Run(appName, func(t *testing.T) {
			ser := runRecoveryCycle(t, appName, false)
			pip := runRecoveryCycle(t, appName, true)

			sr, pr := ser.Attacks()[0], pip.Attacks()[0]
			if sr.RecoveryPipelined {
				t.Fatal("serial run reported the pipelined recovery path")
			}
			if !pr.RecoveryPipelined {
				t.Fatal("pipelined run fell back to the serial recovery path")
			}
			if sr.CulpritRequestID != pr.CulpritRequestID {
				t.Fatalf("culprit differs: serial %d, pipelined %d", sr.CulpritRequestID, pr.CulpritRequestID)
			}

			sm, pm := ser.Process().Machine, pip.Process().Machine
			sRegs, pRegs := sm.SaveRegs(), pm.SaveRegs()
			if sRegs.Regs != pRegs.Regs || sRegs.PC != pRegs.PC || sRegs.Flags != pRegs.Flags {
				t.Errorf("post-recovery registers differ:\nserial    %+v pc=%d flags=%d\npipelined %+v pc=%d flags=%d",
					sRegs.Regs, sRegs.PC, sRegs.Flags, pRegs.Regs, pRegs.PC, pRegs.Flags)
			}

			sPages, pPages := guestPages(t, sm), guestPages(t, pm)
			if len(sPages) != len(pPages) {
				t.Fatalf("mapped page count differs: serial %d, pipelined %d", len(sPages), len(pPages))
			}
			for base, want := range sPages {
				got, ok := pPages[base]
				if !ok {
					t.Errorf("page %#x mapped in serial run only", base)
					continue
				}
				if !bytes.Equal(want, got) {
					t.Errorf("page %#x differs between serial and pipelined recovery", base)
				}
			}

			// The clients must not be able to tell the paths apart.
			sOut, pOut := ser.Process().Outputs(), pip.Process().Outputs()
			if len(sOut) != len(pOut) {
				t.Fatalf("output count differs: serial %d, pipelined %d", len(sOut), len(pOut))
			}
			for i := range sOut {
				if sOut[i].RequestID != pOut[i].RequestID || !bytes.Equal(sOut[i].Data, pOut[i].Data) {
					t.Errorf("output %d differs between serial and pipelined recovery", i)
				}
			}
			if ss, ps := ser.Process().ServedRequests(), pip.Process().ServedRequests(); ss != ps {
				t.Errorf("served count differs: serial %d, pipelined %d", ss, ps)
			}

			// The pipeline must not make the client-observed recovery gap
			// worse; the prefix re-execution is off the critical path.
			if pr.RecoveryVirtualMs > sr.RecoveryVirtualMs {
				t.Errorf("pipelined recovery gap %d ms exceeds serial %d ms",
					pr.RecoveryVirtualMs, sr.RecoveryVirtualMs)
			}
		})
	}
}
