package core

import (
	"fmt"

	"sweeper/internal/vm"
)

// WorkloadConfig configures one guest's open-loop workload generator: a
// rate-controlled request stream driven against the live guest by its own
// serving goroutine. "Open loop" means arrivals are scheduled on the virtual
// clock independently of completions — request i arrives at
// i/TargetReqPerSec seconds into the workload whether or not the guest has
// kept up — so recovery stalls show up as backlog and a throughput dip
// followed by a catch-up burst, exactly what the paper's Figure 5 measures
// against a real client harness.
type WorkloadConfig struct {
	// TargetReqPerSec is the offered load in requests per virtual second.
	// Rates beyond the guest's service capacity saturate it (the queue never
	// drains between arrivals), which is how the Figure 4 overhead sweeps
	// measure peak-throughput cost.
	TargetReqPerSec float64
	// Requests is the total number of requests the generator offers before
	// completing.
	Requests int
	// Benign builds the i-th benign request payload; it defines the request
	// mix (callers typically cycle several request kinds by index).
	Benign func(i int) []byte
	// AttackEvery injects an exploit payload in place of every AttackEvery-th
	// request (0 disables attack injection). Attack builds the k-th injected
	// exploit (k counts injections, so variants can differ); both must be set
	// together.
	AttackEvery int
	Attack      func(k int) []byte
	// Source tags the generated requests at the proxy ("loadgen" when empty;
	// attack injections are always tagged "worm").
	Source string
}

// WorkloadStats is a snapshot of one generator's progress, exported through
// metrics.GuestStats and read via Guest accessors after Drain.
type WorkloadStats struct {
	// Offered counts requests handed to the proxy so far (including ones an
	// input-signature filter rejected); Attacks counts the exploit
	// injections among them; Rejected counts offers the proxy filtered out.
	Offered  int
	Attacks  int
	Rejected int
	// Completed counts the requests that finished service within the
	// workload window (requests the guest served before the generator
	// started are excluded, so mixed Submit+generator traffic does not
	// inflate the rate).
	Completed int
	// StartUs/ElapsedUs delimit the workload on the guest's virtual clock,
	// in microseconds — checkpoint overheads are fractions of a millisecond
	// per interval, so rates derived at millisecond granularity would round
	// them away. ElapsedUs stops advancing once the generator finishes.
	StartUs   uint64
	ElapsedUs uint64
	// Done reports that the generator offered all of its requests (or gave up
	// because the guest halted).
	Done bool
}

// CompletedPerSec returns the realised completion rate over the workload
// window, in requests per virtual second.
func (w WorkloadStats) CompletedPerSec() float64 {
	if w.ElapsedUs == 0 {
		return 0
	}
	return float64(w.Completed) / (float64(w.ElapsedUs) / 1e6)
}

// OfferedPerSec returns the realised offered load in requests per virtual
// second.
func (w WorkloadStats) OfferedPerSec() float64 {
	if w.ElapsedUs == 0 {
		return 0
	}
	return float64(w.Offered) / (float64(w.ElapsedUs) / 1e6)
}

// workloadGen is the per-guest generator state. It is owned by the guest's
// serving goroutine; the done flag is mirrored into Guest.genDone under the
// guest mutex so Drain and the serving loop agree on liveness.
type workloadGen struct {
	cfg         WorkloadConfig
	next        int // next request index to offer
	attacks     int // exploit injections so far
	rejected    int
	started     bool
	startServed int // ServedRequests at workload start, the completion baseline
	startUs     uint64
	endUs       uint64
}

// arrivalUs returns the virtual time, relative to the workload start, at
// which request i arrives.
func (gen *workloadGen) arrivalUs(i int) uint64 {
	return uint64(float64(i) * 1e6 / gen.cfg.TargetReqPerSec)
}

// payloadFor builds request i and reports whether it is an attack injection.
func (gen *workloadGen) payloadFor(i int) (payload []byte, malicious bool) {
	if gen.cfg.AttackEvery > 0 && gen.cfg.Attack != nil && (i+1)%gen.cfg.AttackEvery == 0 {
		return gen.cfg.Attack(gen.attacks), true
	}
	return gen.cfg.Benign(i), false
}

func (gen *workloadGen) source(malicious bool) string {
	if malicious {
		return "worm"
	}
	if gen.cfg.Source != "" {
		return gen.cfg.Source
	}
	return "loadgen"
}

// stats snapshots the generator's counters against the guest's clock and
// lifetime served-request count.
func (gen *workloadGen) stats(nowUs uint64, served int, done bool) WorkloadStats {
	end := nowUs
	if gen.endUs != 0 {
		end = gen.endUs
	}
	elapsed := uint64(0)
	if gen.started && end > gen.startUs {
		elapsed = end - gen.startUs
	}
	completed := served - gen.startServed
	if !gen.started || completed < 0 {
		completed = 0
	}
	return WorkloadStats{
		Offered:   gen.next,
		Attacks:   gen.attacks,
		Rejected:  gen.rejected,
		Completed: completed,
		StartUs:   gen.startUs,
		ElapsedUs: elapsed,
		Done:      done,
	}
}

// SetWorkload attaches an open-loop workload generator to the guest. The
// guest's serving goroutine drives it once the fleet starts: it submits each
// request at its scheduled virtual arrival time (advancing the virtual clock
// across idle gaps, as wall time would pass for a blocked server) and serves
// the queue in between. Call before Fleet.Start; Drain and Stop wait for the
// generator to finish offering its load.
func (g *Guest) SetWorkload(cfg WorkloadConfig) error {
	if cfg.TargetReqPerSec <= 0 {
		return fmt.Errorf("core: workload for %s: TargetReqPerSec must be positive", g.name)
	}
	if cfg.Requests <= 0 {
		return fmt.Errorf("core: workload for %s: Requests must be positive", g.name)
	}
	if cfg.Benign == nil {
		return fmt.Errorf("core: workload for %s: a Benign payload builder is required", g.name)
	}
	if cfg.AttackEvery > 0 && cfg.Attack == nil {
		return fmt.Errorf("core: workload for %s: AttackEvery is set but no Attack payload builder", g.name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gen != nil {
		return fmt.Errorf("core: guest %s already has a workload generator", g.name)
	}
	g.gen = &workloadGen{cfg: cfg}
	g.cond.Broadcast()
	return nil
}

// WorkloadStats returns the generator's progress counters (zero value when
// the guest has no generator). Safe to call concurrently; the counters are
// only final after Fleet.Drain.
func (g *Guest) WorkloadStats() WorkloadStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.genStats
}

// workloadSliceBatch bounds how many arrivals one serving-loop iteration
// admits before serving the queue, so antibody deliveries interleave with a
// saturating generator instead of waiting for the whole workload.
const workloadSliceBatch = 32

// runWorkloadSlice admits the next batch of due arrivals — advancing the
// virtual clock across idle gaps — and serves them. Runs on the guest's
// serving goroutine, which owns the Sweeper. It reports whether the
// generator has finished.
func (g *Guest) runWorkloadSlice(gen *workloadGen) (done bool, err error) {
	s := g.s
	mach := s.Process().Machine
	if !gen.started {
		gen.started = true
		gen.startUs = mach.NowMicros()
		gen.startServed = s.Process().ServedRequests()
	}
	for submitted := 0; gen.next < gen.cfg.Requests && submitted < workloadSliceBatch; submitted++ {
		due := gen.arrivalUs(gen.next)
		now := mach.NowMicros() - gen.startUs
		if due > now {
			if submitted > 0 || s.Proxy().Pending() > 0 {
				// Work is queued and the next arrival is in the future: serve
				// first, then reconsider on the next slice.
				break
			}
			// The guest is idle until the next arrival. A real server would
			// block in recv while wall time passes; model that by advancing
			// the virtual clock to the arrival.
			mach.AddCycles((due - now) * vm.CyclesPerMicrosecond)
		}
		i := gen.next
		gen.next++
		payload, malicious := gen.payloadFor(i)
		if malicious {
			gen.attacks++
		}
		if !s.Submit(payload, gen.source(malicious), malicious) {
			gen.rejected++
		}
	}
	if _, err := s.ServeAll(); err != nil {
		gen.endUs = mach.NowMicros()
		return true, err
	}
	if gen.next >= gen.cfg.Requests {
		if gen.endUs == 0 {
			gen.endUs = mach.NowMicros()
		}
		return true, nil
	}
	if s.Halted() {
		gen.endUs = mach.NowMicros()
		return true, nil
	}
	return false, nil
}
